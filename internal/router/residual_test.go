package router

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"testing"
	"time"

	"rqm/internal/faultfs"
)

// Residual-layer cluster behavior: exact puts replicate the lossless tier,
// promote/demote run once and raw-sync to the peers, rebalance and
// read-repair move the residual alongside the container.

// exactGet reads the bit-exact tier through the router.
func (tc *testCluster) exactGet(t *testing.T, name string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Get(tc.ts.URL + "/v1/datasets/" + name + "?exact=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b, resp.Header
}

// rawResidual fetches the shard's residual file bytes verbatim.
func (s *testShard) rawResidual(t *testing.T, name string) []byte {
	t.Helper()
	resp, err := http.Get(s.ts.URL + "/v1/datasets/" + name + "?raw=1&residual=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("raw residual %s on %s: status %d", name, s.ts.URL, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// corruptShardResidual flips one byte inside the first residual block's
// payload on sh — past the 52-byte file header and the 13-byte block head,
// squarely in CRC-covered territory.
func corruptShardResidual(t *testing.T, sh *testShard, name string) {
	t.Helper()
	p, err := sh.st.ResidualPath(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := faultfs.CorruptFile(p, 52+13+5); err != nil {
		t.Fatal(err)
	}
}

// TestClusterExactPutReplicatesResidual: a quorum write with ?exact=1 lands
// the residual on every replica, byte-identical (the codec is
// deterministic), and exact reads through the router return the original
// bit for bit.
func TestClusterExactPutReplicatesResidual(t *testing.T) {
	tc := newTestCluster(t, 3, 2)
	const name = "cl-exact"
	body := fieldBytes(t, 11)
	info, _ := tc.put(t, name, "mode=rel&eb=1e-3&chunk=512&exact=1", body)
	if !info.Exact || info.ResidualBytes == 0 {
		t.Fatalf("exact put info %+v — no residual layer recorded", info)
	}

	holders := tc.holders(t, name)
	if len(holders) != 2 {
		t.Fatalf("holders %v, want 2", holders)
	}
	a, b := tc.shards[holders[0]], tc.shards[holders[1]]
	ra, rb := a.rawResidual(t, name), b.rawResidual(t, name)
	if len(ra) == 0 || !bytes.Equal(ra, rb) {
		t.Fatalf("replica residuals differ (%d vs %d bytes)", len(ra), len(rb))
	}

	code, got, hdr := tc.exactGet(t, name)
	if code != http.StatusOK {
		t.Fatalf("exact read via router: status %d", code)
	}
	if hdr.Get("X-RQM-Exact") != "1" {
		t.Fatalf("exact read missing X-RQM-Exact (headers %v)", hdr)
	}
	if !bytes.Equal(got, body) {
		t.Fatal("exact read through the router is not the original bytes")
	}
}

// TestClusterPromoteDemoteThroughRouter: promote runs on one replica and the
// peer receives the residual through the sync frame; demote drops the layer
// everywhere the same way; exact reads answer accordingly at each step.
func TestClusterPromoteDemoteThroughRouter(t *testing.T) {
	tc := newTestCluster(t, 3, 2)
	const name = "cl-prom"
	body := fieldBytes(t, 12)
	tc.put(t, name, "mode=rel&eb=1e-3&chunk=512", body)

	// Lossy dataset: the exact tier answers the typed 409 through the proxy.
	code, _, _ := tc.exactGet(t, name)
	if code != http.StatusConflict {
		t.Fatalf("exact read on lossy dataset: status %d, want 409", code)
	}

	// Promote with the true original; one replica does the work, the other
	// gets the bytes.
	resp, err := http.Post(tc.ts.URL+"/v1/datasets/"+name+"/promote", "application/octet-stream",
		bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("promote via router: status %d: %s", resp.StatusCode, raw)
	}
	if got := resp.Header.Get("X-RQM-Promote"); got != "promoted" {
		t.Fatalf("X-RQM-Promote = %q", got)
	}
	if got := resp.Header.Get("X-RQM-Replicas-Synced"); got != "1" {
		t.Fatalf("X-RQM-Replicas-Synced = %q, want 1", got)
	}
	holders := tc.holders(t, name)
	if len(holders) != 2 {
		t.Fatalf("holders after promote: %v", holders)
	}
	a, b := tc.shards[holders[0]], tc.shards[holders[1]]
	ia, _ := a.has(t, name)
	ib, _ := b.has(t, name)
	if !ia.Exact || !ib.Exact || ia.Generation != ib.Generation {
		t.Fatalf("replicas diverge after promote: %+v vs %+v", ia, ib)
	}
	if !bytes.Equal(a.rawResidual(t, name), b.rawResidual(t, name)) {
		t.Fatal("replica residuals differ after promote sync")
	}
	code, got, _ := tc.exactGet(t, name)
	if code != http.StatusOK || !bytes.Equal(got, body) {
		t.Fatalf("exact read after promote: status %d, identical=%v", code, bytes.Equal(got, body))
	}

	// Demote drops the layer on both replicas; exact reads 409 again while
	// the lossy tier keeps serving.
	dresp, err := http.Post(tc.ts.URL+"/v1/datasets/"+name+"/demote", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK || dresp.Header.Get("X-RQM-Demote") != "demoted" {
		t.Fatalf("demote via router: status %d, X-RQM-Demote %q", dresp.StatusCode, dresp.Header.Get("X-RQM-Demote"))
	}
	if got := dresp.Header.Get("X-RQM-Replicas-Synced"); got != "1" {
		t.Fatalf("demote X-RQM-Replicas-Synced = %q, want 1", got)
	}
	for _, h := range tc.holders(t, name) {
		if info, _ := tc.shards[h].has(t, name); info.Exact {
			t.Fatalf("shard %d still reports a residual after demote", h)
		}
	}
	code, _, _ = tc.exactGet(t, name)
	if code != http.StatusConflict {
		t.Fatalf("exact read after demote: status %d, want 409", code)
	}
	if code, lossy, _ := tc.get(t, name); code != http.StatusOK || len(lossy) == 0 {
		t.Fatalf("lossy read after demote: status %d", code)
	}

	m := tc.rt.Snapshot()
	if m.ProxiedPromotes != 1 || m.ProxiedDemotes != 1 {
		t.Fatalf("proxied promote/demote counters %d/%d, want 1/1", m.ProxiedPromotes, m.ProxiedDemotes)
	}
}

// TestClusterRebalanceCarriesResidual: after losing a replica of a promoted
// dataset, one rebalance pass restores R=2 with the residual riding the raw
// sync frame — the new copy deep-verifies and serves the exact tier.
func TestClusterRebalanceCarriesResidual(t *testing.T) {
	tc := newTestCluster(t, 3, 2)
	const name = "cl-rbres"
	body := fieldBytes(t, 13)
	tc.put(t, name, "mode=rel&eb=1e-3&chunk=512&exact=1", body)

	holders := tc.holders(t, name)
	if len(holders) != 2 {
		t.Fatalf("holders %v", holders)
	}
	survivor := tc.shards[holders[0]]
	goodRes := survivor.rawResidual(t, name)
	tc.shards[holders[1]].kill()

	rep, err := tc.rt.Rebalance(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Copied == 0 || rep.Failed != 0 {
		t.Fatalf("rebalance report %+v", rep)
	}

	// The new replica holds the full quality ladder.
	for i, sh := range tc.shards {
		info, ok := sh.has(t, name)
		if !ok {
			continue
		}
		if !info.Exact {
			t.Fatalf("shard %d lost the residual in migration: %+v", i, info)
		}
		if !bytes.Equal(sh.rawResidual(t, name), goodRes) {
			t.Fatalf("shard %d residual differs after rebalance", i)
		}
		if err := sh.st.VerifyDataset(name, true); err != nil {
			t.Fatalf("shard %d deep verify after rebalance: %v", i, err)
		}
	}
	code, got, _ := tc.exactGet(t, name)
	if code != http.StatusOK || !bytes.Equal(got, body) {
		t.Fatalf("exact read after rebalance: status %d", code)
	}
}

// TestChaosCorruptResidualReadRepair: one replica's residual file is
// byte-flipped on disk. Exact reads through the router never fail and never
// return a wrong byte — the rotten replica answers the typed corruption
// verdict, the router fails over, and read-repair re-replicates container +
// residual so the victim ends byte-identical to its peer again.
func TestChaosCorruptResidualReadRepair(t *testing.T) {
	tc := newTestCluster(t, 3, 2)
	const name = "cl-resheal"
	body := fieldBytes(t, 14)
	tc.put(t, name, "mode=rel&eb=1e-3&chunk=512&exact=1", body)

	holders := tc.holders(t, name)
	if len(holders) != 2 {
		t.Fatalf("holders %v", holders)
	}
	// Corrupt the primary so the very next exact read exercises failover.
	primary := tc.rt.ring.sequence(name)[0]
	victim := tc.shards[primary]
	goodRes := victim.rawResidual(t, name)
	goodInfo, _ := victim.has(t, name)

	corruptShardResidual(t, victim, name)
	if err := victim.st.VerifyDataset(name, false); err == nil {
		t.Fatal("victim still verifies after residual corruption")
	}

	failedOver := 0
	for i := 0; i < 10; i++ {
		code, got, hdr := tc.exactGet(t, name)
		if code != http.StatusOK {
			t.Fatalf("exact read %d with one corrupt residual: status %d", i, code)
		}
		if !bytes.Equal(got, body) {
			t.Fatalf("exact read %d returned wrong bytes", i)
		}
		if hdr.Get("X-RQM-Failover") != "" {
			failedOver++
		}
	}
	if failedOver == 0 {
		t.Fatal("no exact read failed over — the corrupt primary was never tried?")
	}

	// Read-repair is asynchronous; wait until the victim deep-verifies again.
	deadline := time.Now().Add(10 * time.Second)
	for {
		m := tc.rt.Snapshot()
		if m.ReadRepairs >= 1 && victim.st.VerifyDataset(name, true) == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("residual repair did not land: %+v, verify %v", m, victim.st.VerifyDataset(name, true))
		}
		time.Sleep(20 * time.Millisecond)
	}

	if !bytes.Equal(victim.rawResidual(t, name), goodRes) {
		t.Fatal("repaired residual differs from the original bytes")
	}
	healedInfo, ok := victim.has(t, name)
	if !ok || !healedInfo.Exact {
		t.Fatalf("healed replica lost the residual layer: %+v", healedInfo)
	}
	if !healedInfo.CreatedAt.Equal(goodInfo.CreatedAt) || healedInfo.Generation != goodInfo.Generation {
		t.Fatalf("repair changed the manifest version: %+v -> %+v", goodInfo, healedInfo)
	}
	code, got, _ := tc.exactGet(t, name)
	if code != http.StatusOK || !bytes.Equal(got, body) {
		t.Fatalf("exact read after repair: status %d", code)
	}
	if m := tc.rt.Snapshot(); m.ReadRepairFailures != 0 {
		t.Fatalf("read_repair_failures = %d", m.ReadRepairFailures)
	}
}
