package router

import (
	"fmt"
	"reflect"
	"testing"
)

// TestRingSequenceIsPermutation: every name's sequence visits every shard
// exactly once, deterministically.
func TestRingSequenceIsPermutation(t *testing.T) {
	r := newRing(5, 64)
	for i := 0; i < 200; i++ {
		name := fmt.Sprintf("ds-%d", i)
		seq := r.sequence(name)
		if len(seq) != 5 {
			t.Fatalf("sequence(%q) = %v, want 5 distinct shards", name, seq)
		}
		seen := map[int]bool{}
		for _, s := range seq {
			if s < 0 || s >= 5 || seen[s] {
				t.Fatalf("sequence(%q) = %v is not a permutation", name, seq)
			}
			seen[s] = true
		}
		if again := r.sequence(name); !reflect.DeepEqual(seq, again) {
			t.Fatalf("sequence(%q) not deterministic: %v then %v", name, seq, again)
		}
	}
}

// TestRingDistribution: with virtual nodes, no shard is starved of primary
// ownership and no shard hoards it.
func TestRingDistribution(t *testing.T) {
	const shards, names = 4, 4000
	r := newRing(shards, 64)
	counts := make([]int, shards)
	for i := 0; i < names; i++ {
		counts[r.sequence(fmt.Sprintf("dataset/%d", i))[0]]++
	}
	for s, c := range counts {
		// Expected 1000 per shard; 64 vnodes keep the spread well inside
		// 2x either way.
		if c < names/shards/2 || c > names/shards*2 {
			t.Fatalf("shard %d owns %d/%d primaries, out of balance: %v", s, c, names, counts)
		}
	}
}

// TestRingBoundaries pins the two placement edge cases: a key hashing
// exactly onto a ring point belongs to that point, and a key past the
// highest point wraps to the first.
func TestRingBoundaries(t *testing.T) {
	r := newRing(3, 16)
	last := r.points[len(r.points)-1]
	first := r.points[0]

	// Exact hit on an interior point.
	mid := r.points[len(r.points)/2]
	if got := r.sequenceFrom(mid.hash); got[0] != mid.shard {
		t.Fatalf("exact-point hash %x routed to shard %d, want owner %d", mid.hash, got[0], mid.shard)
	}
	// Exact hit on the last point.
	if got := r.sequenceFrom(last.hash); got[0] != last.shard {
		t.Fatalf("last-point hash routed to %d, want %d", got[0], last.shard)
	}
	// One past the last point wraps to the first.
	if last.hash != ^uint64(0) {
		if got := r.sequenceFrom(last.hash + 1); got[0] != first.shard {
			t.Fatalf("wrap-around hash routed to %d, want first point's shard %d", got[0], first.shard)
		}
	}
	// Hash zero takes the first point too (nothing smaller exists).
	if got := r.sequenceFrom(0); got[0] != first.shard {
		t.Fatalf("hash 0 routed to %d, want %d", got[0], first.shard)
	}
}

// TestRingStableUnderMembershipGrowth: adding a shard must not reshuffle
// placements that the new shard did not claim — the consistency property
// the rebalancer's O(datasets/shards) migration cost rests on.
func TestRingStableUnderMembershipGrowth(t *testing.T) {
	small, big := newRing(3, 64), newRing(4, 64)
	moved := 0
	const names = 2000
	for i := 0; i < names; i++ {
		name := fmt.Sprintf("dataset/%d", i)
		was, now := small.sequence(name)[0], big.sequence(name)[0]
		if was != now {
			if now != 3 {
				t.Fatalf("%q moved from shard %d to %d, not to the new shard", name, was, now)
			}
			moved++
		}
	}
	// The new shard should claim roughly 1/4 of primaries — and only that.
	if moved == 0 || moved > names/2 {
		t.Fatalf("membership growth moved %d/%d primaries", moved, names)
	}
}
