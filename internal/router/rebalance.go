package router

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"

	"rqm/internal/service"
)

// The rebalance pass restores the placement invariant after shards die,
// rejoin, or are added: every dataset on its R ring-desired shards, at the
// newest version, with stray copies removed. It moves container bytes
// verbatim — source side serves the full manifest (?manifest=1&full=1) and
// the raw container (?raw=1); the target's POST /v1/datasets/{name}/raw
// re-stages those bytes preserving created_at/generation/content_hash, so a
// migration never decompresses or recompresses anything and replicas stay
// bit-identical. Divergent copies are arbitrated by manifest version order
// ((created_at, generation), the store's CAS key): the newest live copy is
// authoritative, older ones are overwritten, and a target that turns out
// newer than our listing wins via the raw endpoint's own 409.

// RebalanceReport is the POST /v1/cluster/rebalance response body.
type RebalanceReport struct {
	ShardsLive int `json:"shards_live"`
	// Datasets is the number of distinct dataset names seen across live
	// shards.
	Datasets int `json:"datasets"`
	// Copied counts raw container migrations that stored bytes on a target.
	Copied int `json:"copied"`
	// Skipped counts idempotent no-ops: the target already held the exact
	// version (same created_at/generation/content_hash).
	Skipped int `json:"skipped"`
	// Conflicts counts targets that refused a copy because they held a
	// strictly newer version than the chosen source (the target wins).
	Conflicts int `json:"conflicts"`
	// Removed counts stray copies deleted from shards outside the desired
	// replica set (only after every desired replica held a current copy).
	Removed int `json:"removed"`
	// Failed counts copy or removal attempts that errored.
	Failed int `json:"failed"`
	// BytesMoved is the total raw container bytes streamed between shards.
	BytesMoved int64 `json:"bytes_moved"`
}

// replicaCopy is one shard's copy of a dataset, as seen in its listing.
type replicaCopy struct {
	sh   *shardState
	info service.DatasetInfo
}

// Rebalance re-probes the fleet, inventories every live shard, and repairs
// placement dataset by dataset. It is safe to run at any time and
// idempotent at the byte level: a second pass after a successful one only
// produces skips.
func (rt *Router) Rebalance(ctx context.Context) (*RebalanceReport, error) {
	rt.ProbeNow(ctx)
	rep := &RebalanceReport{}

	// Inventory: every live shard's dataset listing. A shard that fails to
	// list drops out of this pass (and is marked unreachable) — we neither
	// copy from nor delete on a shard whose contents we could not observe.
	occupancy := map[string][]replicaCopy{}
	for _, sh := range rt.shards {
		if !sh.isHealthy() {
			continue
		}
		infos, err := rt.listShard(ctx, sh)
		if err != nil {
			sh.markUnreachable(err)
			continue
		}
		rep.ShardsLive++
		for _, d := range infos {
			occupancy[d.Name] = append(occupancy[d.Name], replicaCopy{sh: sh, info: d})
		}
	}
	if rep.ShardsLive == 0 {
		return nil, fmt.Errorf("rebalance: no live shards")
	}

	names := make([]string, 0, len(occupancy))
	for name := range occupancy {
		names = append(names, name)
	}
	sort.Strings(names)
	rep.Datasets = len(names)

	for _, name := range names {
		copies := occupancy[name]
		// Authoritative copy: newest by manifest version order.
		auth := copies[0]
		for _, c := range copies[1:] {
			if infoNewer(&c.info, &auth.info) {
				auth = c
			}
		}
		holds := map[*shardState]*replicaCopy{}
		for i := range copies {
			holds[copies[i].sh] = &copies[i]
		}

		// Repair the desired replica set up to the authoritative version.
		desired := rt.desiredReplicas(name)
		desiredSet := map[*shardState]bool{}
		fullyPlaced := true
		for _, d := range desired {
			desiredSet[d] = true
			if c, ok := holds[d]; ok && !infoNewer(&auth.info, &c.info) {
				continue // already current (or newer — it would have been auth)
			}
			n, status, err := rt.syncReplica(ctx, auth.sh, d, name)
			switch {
			case err != nil:
				rep.Failed++
				fullyPlaced = false
			case status == http.StatusCreated:
				rep.Copied++
				rep.BytesMoved += n
			case status == http.StatusConflict:
				// Target holds something newer than our listing; it wins.
				rep.Conflicts++
			default: // 200: idempotent skip
				rep.Skipped++
			}
		}

		// Drop stray copies, but only once the desired set fully holds the
		// dataset — a misplaced replica is the only durable copy until then.
		if !fullyPlaced {
			continue
		}
		for _, c := range copies {
			if desiredSet[c.sh] {
				continue
			}
			if err := rt.deleteOn(ctx, c.sh, name); err != nil {
				rep.Failed++
				continue
			}
			rep.Removed++
		}
	}

	rt.count(&rt.rebalances, 1)
	rt.count(&rt.rebalanceCopied, int64(rep.Copied))
	rt.count(&rt.rebalanceRemoved, int64(rep.Removed))
	rt.count(&rt.rebalanceBytes, rep.BytesMoved)
	return rep, nil
}

// listShard fetches one shard's dataset listing.
func (rt *Router) listShard(ctx context.Context, sh *shardState) ([]service.DatasetInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, sh.url+"/v1/datasets", nil)
	if err != nil {
		return nil, err
	}
	resp, err := rt.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, errStatus(resp)
	}
	var lr service.ListDatasetsResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		return nil, fmt.Errorf("decode listing: %w", err)
	}
	return lr.Datasets, nil
}

// deleteOn removes name from a single shard (no fan-out; used by rebalance
// for stray copies). A 404 is success — the copy is gone either way.
func (rt *Router) deleteOn(ctx context.Context, sh *shardState, name string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, sh.url+datasetPath(name), nil)
	if err != nil {
		return err
	}
	resp, err := rt.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 && resp.StatusCode != http.StatusNotFound {
		return errStatus(resp)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// syncReplica copies name from src to dst byte-for-byte: full manifest +
// raw container off src — plus the raw residual file when the manifest
// declares a lossless layer — framed into dst's raw-put endpoint. The
// streams are never buffered or re-encoded, so a sync moves the whole
// quality ladder verbatim. Returns the bytes moved and the raw-put status
// (201 stored/repaired, 200 skipped, 409 target-newer).
//
// Integrity is enforced at three points, so a sync can neither propagate
// corruption nor be fooled by it: the source shard shallow-verifies its
// copy before serving it (?verify=1 — a corrupt source answers 422 and the
// sync fails instead of spreading rot); the target re-stages the stream and
// hashes it against the manifest's ContainerHash (a copy corrupted in
// flight is rejected); and the target re-verifies a committed same-version
// copy before taking the idempotent skip (?repair=1 — which is what lets
// read-repair overwrite a rotten replica that still claims the right
// version).
func (rt *Router) syncReplica(ctx context.Context, src, dst *shardState, name string) (int64, int, error) {
	n, status, err := rt.syncReplicaInner(ctx, src, dst, name)
	if err != nil {
		rt.count(&rt.replicaSyncFailures, 1)
	} else {
		rt.count(&rt.replicaSyncs, 1)
	}
	return n, status, err
}

func (rt *Router) syncReplicaInner(ctx context.Context, src, dst *shardState, name string) (int64, int, error) {
	// Full manifest: the verbatim store.Manifest including chunk index and
	// profile, exactly what the raw-put frame carries.
	manReq, err := http.NewRequestWithContext(ctx, http.MethodGet, src.url+datasetPath(name)+"?manifest=1&full=1", nil)
	if err != nil {
		return 0, 0, err
	}
	manResp, err := rt.hc.Do(manReq)
	if err != nil {
		return 0, 0, fmt.Errorf("fetch manifest from %s: %w", src.url, err)
	}
	manBytes, err := io.ReadAll(io.LimitReader(manResp.Body, errBodyLimit))
	manResp.Body.Close()
	if err != nil {
		return 0, 0, err
	}
	if manResp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("fetch manifest from %s: status %d", src.url, manResp.StatusCode)
	}
	// The only manifest field the router reads: whether a residual layer
	// travels with the container. Everything else passes through opaquely.
	var man struct {
		Residual *struct {
			Bytes int64 `json:"bytes"`
		} `json:"residual"`
	}
	if err := json.Unmarshal(manBytes, &man); err != nil {
		return 0, 0, fmt.Errorf("parse manifest from %s: %w", src.url, err)
	}

	// Raw container stream, source-verified before the first byte leaves.
	rawReq, err := http.NewRequestWithContext(ctx, http.MethodGet, src.url+datasetPath(name)+"?raw=1&verify=1", nil)
	if err != nil {
		return 0, 0, err
	}
	rawResp, err := rt.hc.Do(rawReq)
	if err != nil {
		return 0, 0, fmt.Errorf("fetch container from %s: %w", src.url, err)
	}
	defer rawResp.Body.Close()
	if rawResp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(rawResp.Body, errBodyLimit))
		return 0, 0, fmt.Errorf("fetch container from %s: status %d", src.url, rawResp.StatusCode)
	}

	// Residual stream, when declared: fetched with the same source-side
	// verification and appended after the container — the raw-put frame is
	// [len][manifest][container][residual], exactly what the target re-stages.
	stream := io.Reader(rawResp.Body)
	frameLen := int64(0)
	if cl := rawResp.ContentLength; cl > 0 {
		frameLen = int64(4+len(manBytes)) + cl
	}
	if man.Residual != nil {
		resReq, err := http.NewRequestWithContext(ctx, http.MethodGet, src.url+datasetPath(name)+"?raw=1&residual=1&verify=1", nil)
		if err != nil {
			return 0, 0, err
		}
		resResp, err := rt.hc.Do(resReq)
		if err != nil {
			return 0, 0, fmt.Errorf("fetch residual from %s: %w", src.url, err)
		}
		defer resResp.Body.Close()
		if resResp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, io.LimitReader(resResp.Body, errBodyLimit))
			return 0, 0, fmt.Errorf("fetch residual from %s: status %d", src.url, resResp.StatusCode)
		}
		stream = io.MultiReader(rawResp.Body, resResp.Body)
		if frameLen > 0 && resResp.ContentLength > 0 {
			frameLen += resResp.ContentLength
		} else {
			frameLen = 0 // one length unknown: fall back to chunked
		}
	}

	// Frame: 4-byte big-endian manifest length, manifest JSON, container,
	// then the residual when the manifest declares one.
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(manBytes)))
	counted := &countingReader{r: stream}
	body := io.MultiReader(bytes.NewReader(hdr[:]), bytes.NewReader(manBytes), counted)

	putReq, err := http.NewRequestWithContext(ctx, http.MethodPost, dst.url+datasetPath(name)+"/raw?repair=1", body)
	if err != nil {
		return 0, 0, err
	}
	putReq.Header.Set("Content-Type", "application/octet-stream")
	if frameLen > 0 {
		putReq.ContentLength = frameLen
	}
	putResp, err := rt.hc.Do(putReq)
	if err != nil {
		return counted.n, 0, fmt.Errorf("raw put to %s: %w", dst.url, err)
	}
	defer putResp.Body.Close()
	switch putResp.StatusCode {
	case http.StatusCreated, http.StatusOK, http.StatusConflict:
		io.Copy(io.Discard, io.LimitReader(putResp.Body, errBodyLimit))
		return counted.n, putResp.StatusCode, nil
	default:
		return counted.n, putResp.StatusCode, fmt.Errorf("raw put to %s: %w", dst.url, errStatus(putResp))
	}
}

// countingReader tallies container bytes actually streamed.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
