package router

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// The consistent-hash ring places dataset names on shards. Each shard owns
// vnodes points on a 64-bit ring; a name hashes to a point and its replica
// sequence is the distinct shards met walking clockwise from there. Virtual
// nodes smooth the load (with V points per shard the expected imbalance
// shrinks like 1/sqrt(V)), and consistency is the property the cluster
// tier leans on: adding or removing one shard moves only the names whose
// ring arcs that shard gained or lost — everything else keeps its placement,
// so a rebalance after membership change migrates O(datasets/shards), not
// everything.

// ringPoint is one virtual node: a hash position owned by a shard.
type ringPoint struct {
	hash  uint64
	shard int // index into the configured shard list
}

// ring is an immutable consistent-hash ring over a fixed shard list.
type ring struct {
	points []ringPoint // sorted by hash
	shards int
	vnodes int
}

// hashKey positions a key on the ring: FNV-64a (fast, stable across
// processes and restarts — placement must never depend on process state)
// pushed through a 64-bit finalizer. Raw FNV clusters on the short, nearly
// identical vnode keys ("0#0", "0#1", ...), skewing arc lengths several
// sigma past the 1/sqrt(V) ideal; the multiply-xor-shift mix (splitmix64's
// finalizer) restores avalanche so the balance argument actually holds.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return mix64(h.Sum64())
}

// mix64 is a bijective avalanche finalizer (splitmix64 / murmur3 fmix64
// family): every input bit flips each output bit with probability ~1/2.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// newRing builds the ring: vnodes points per shard, hashed from
// "<shard-index>#<vnode>". Points hash off the shard's ring identity (its
// index), not its URL, so re-addressing a shard (new port, new host) keeps
// every placement.
func newRing(shards, vnodes int) *ring {
	r := &ring{
		points: make([]ringPoint, 0, shards*vnodes),
		shards: shards,
		vnodes: vnodes,
	}
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hashKey(fmt.Sprintf("%d#%d", s, v)), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare, but the ring must be total): lower
		// shard index wins deterministically.
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// sequence returns every shard index exactly once, ordered by the clockwise
// ring walk from name's hash position: element 0 is the primary, elements
// 1..R-1 the replicas, and the tail the failover order past them. A key
// hashing exactly onto a point belongs to that point; a key past the last
// point wraps to the first.
func (r *ring) sequence(name string) []int {
	return r.sequenceFrom(hashKey(name))
}

// sequenceFrom is sequence for an explicit ring position (split out so
// boundary cases — exact point hits, wrap past the last point — are
// testable without reverse-engineering FNV preimages).
func (r *ring) sequenceFrom(h uint64) []int {
	out := make([]int, 0, r.shards)
	seen := make([]bool, r.shards)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for i := 0; i < len(r.points) && len(out) < r.shards; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.shard] {
			seen[p.shard] = true
			out = append(out, p.shard)
		}
	}
	return out
}
