package router

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"rqm/internal/faultfs"
	"rqm/internal/service"
)

// The chaos suite: fault-injected corruption and hangs against the full
// store → service → router stack, pinning the self-healing contract from
// the client's point of view — injected corruption yields typed errors and
// repairs, never a panic, never a wrong byte, and (with a healthy replica
// left) never a failed read.

// corruptShardContainer flips one byte inside the first chunk's payload of
// name's container on sh — persistent on-disk rot the shard's
// verify-before-serve must catch.
func corruptShardContainer(t *testing.T, sh *testShard, name string) {
	t.Helper()
	m, err := sh.st.Manifest(name)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sh.st.ContainerPath(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := faultfs.CorruptFile(p, m.Chunks[0].Offset+22+5); err != nil {
		t.Fatal(err)
	}
}

// shardScrub runs one shallow scrub on a shard over HTTP and returns the
// finished status.
func shardScrub(t *testing.T, sh *testShard) service.ScrubStatusResponse {
	t.Helper()
	resp, err := http.Post(sh.ts.URL+"/v1/scrub", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("scrub start: status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		sresp, err := http.Get(sh.ts.URL + "/v1/scrub/status")
		if err != nil {
			t.Fatal(err)
		}
		var st service.ScrubStatusResponse
		if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		sresp.Body.Close()
		if st.State != "running" {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard scrub still running: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosCorruptReplicaReadRepair is the acceptance scenario: one
// replica's container is byte-flipped ON DISK in a 3-shard R=2 cluster.
// Every client read through the router keeps returning the correct data
// with zero failures; the router records a read-repair; and afterwards the
// rotten replica is byte-identical to its peer again — same container
// bytes, same manifest version (created_at/generation/content_hash) — and a
// shard scrub comes back clean.
func TestChaosCorruptReplicaReadRepair(t *testing.T) {
	tc := newTestCluster(t, 3, 2)
	const name = "cl-heal"
	tc.put(t, name, "mode=abs&eb=0.01&chunk=512", fieldBytes(t, 1))

	code, want, _ := tc.get(t, name)
	if code != http.StatusOK {
		t.Fatalf("baseline read: status %d", code)
	}
	holders := tc.holders(t, name)
	if len(holders) != 2 {
		t.Fatalf("holders %v, want 2", holders)
	}
	// The primary is first in ring order, so the router reads it first —
	// corrupting it forces the failover + repair path on the very next read.
	primary := tc.rt.ring.sequence(name)[0]
	victim := tc.shards[primary]
	goodRaw := victim.raw(t, name)
	goodInfo, _ := victim.has(t, name)

	corruptShardContainer(t, victim, name)
	// Sanity: the victim's own verify now fails; the rot is real.
	if err := victim.st.VerifyDataset(name, false); err == nil {
		t.Fatal("victim still verifies after corruption")
	}

	// Zero failed reads: every read through the router during and after the
	// repair returns the exact baseline bytes.
	failedOver := 0
	for i := 0; i < 10; i++ {
		c, got, hdr := tc.get(t, name)
		if c != http.StatusOK {
			t.Fatalf("read %d with one corrupt replica: status %d", i, c)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("read %d returned wrong bytes", i)
		}
		if hdr.Get("X-RQM-Failover") != "" {
			failedOver++
		}
	}
	if failedOver == 0 {
		t.Fatal("no read failed over — the corrupt primary was never tried?")
	}

	// The repair is asynchronous: wait for the counter and the healed bytes.
	deadline := time.Now().Add(10 * time.Second)
	for {
		m := tc.rt.Snapshot()
		if m.ReadRepairs >= 1 && victim.st.VerifyDataset(name, true) == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("repair did not land: %+v, verify %v", m, victim.st.VerifyDataset(name, true))
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Byte-identical replication restored, version untouched.
	if !bytes.Equal(victim.raw(t, name), goodRaw) {
		t.Fatal("repaired container differs from the original bytes")
	}
	healedInfo, ok := victim.has(t, name)
	if !ok {
		t.Fatal("dataset missing from repaired shard")
	}
	if !healedInfo.CreatedAt.Equal(goodInfo.CreatedAt) || healedInfo.Generation != goodInfo.Generation ||
		healedInfo.ContentHash != goodInfo.ContentHash {
		t.Fatalf("repair changed the manifest version: %+v -> %+v", goodInfo, healedInfo)
	}
	for _, h := range holders {
		if !bytes.Equal(tc.shards[h].raw(t, name), goodRaw) {
			t.Fatalf("replica on shard %d diverged after repair", h)
		}
	}

	// A follow-up scrub on the healed shard finds nothing to complain about.
	st := shardScrub(t, victim)
	if st.State != "done" || st.Report == nil || len(st.Report.Issues) != 0 {
		t.Fatalf("post-repair scrub: %+v", st)
	}

	m := tc.rt.Snapshot()
	if m.ReadRepairs < 1 {
		t.Fatalf("read_repairs = %d, want >= 1", m.ReadRepairs)
	}
	if m.ReadRepairFailures != 0 {
		t.Fatalf("read_repair_failures = %d", m.ReadRepairFailures)
	}
}

// TestChaosEveryReplicaCorrupt: with BOTH replicas rotten there is nothing
// to fail over to — the router must answer the typed corrupt_dataset
// verdict (not a 404: corrupt copies prove the dataset exists, and not a
// generic 502: retrying cannot help).
func TestChaosEveryReplicaCorrupt(t *testing.T) {
	tc := newTestCluster(t, 3, 2)
	const name = "cl-doom"
	tc.put(t, name, "mode=abs&eb=0.01&chunk=512", fieldBytes(t, 2))
	for _, h := range tc.holders(t, name) {
		corruptShardContainer(t, tc.shards[h], name)
	}

	resp, err := http.Get(tc.ts.URL + "/v1/datasets/" + name)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("all-corrupt read: status %d, want 422", resp.StatusCode)
	}
	if eb := decodeErr(t, resp); eb.Error.Code != "corrupt_dataset" {
		t.Fatalf("all-corrupt read: code %q", eb.Error.Code)
	}
	// No repair can be scheduled — there was no good copy to serve.
	if m := tc.rt.Snapshot(); m.ReadRepairs != 0 {
		t.Fatalf("read_repairs = %d with zero healthy copies", m.ReadRepairs)
	}
}

// TestChaosHungShardFailsOver is the shard-timeout regression: a shard that
// accepts the connection and then sits silent (hung store read holds the
// handler before headers are written) must not stall the proxied read past
// the shard timeout — the router fails over and serves from the healthy
// replica.
func TestChaosHungShardFailsOver(t *testing.T) {
	const shardTimeout = 250 * time.Millisecond
	shards := []*testShard{newShard(t), newShard(t), newShard(t)}
	urls := make([]string, len(shards))
	for i, s := range shards {
		urls[i] = s.ts.URL
	}
	rt, err := New(Config{Shards: urls, Replicas: 2, ProbeInterval: -1, FailAfter: 1,
		ShardTimeout: shardTimeout})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	ts := httptest.NewServer(rt)
	t.Cleanup(ts.Close)
	tc := &testCluster{shards: shards, rt: rt, ts: ts}

	const name = "cl-hang"
	tc.put(t, name, "mode=abs&eb=0.01&chunk=512", fieldBytes(t, 3))
	code, want, _ := tc.get(t, name)
	if code != http.StatusOK {
		t.Fatalf("baseline read: status %d", code)
	}

	// Hang the primary's store reads: its GET handler blocks before any
	// response header is committed — exactly the silence the shard timeout
	// exists to bound.
	primary := rt.ring.sequence(name)[0]
	ffs := faultfs.New()
	fault := faultfs.NewFault()
	fault.Hang = true
	ffs.Set(name+"/data.rqz", fault)
	shards[primary].st.SetReadFS(ffs)
	t.Cleanup(ffs.Reset) // unblock the parked handler goroutine at teardown

	start := time.Now()
	c, got, _ := tc.get(t, name)
	elapsed := time.Since(start)
	if c != http.StatusOK || !bytes.Equal(got, want) {
		t.Fatalf("read with hung primary: status %d, %d bytes", c, len(got))
	}
	if elapsed < shardTimeout {
		t.Fatalf("read returned in %v — the hung primary was never tried (timeout %v)", elapsed, shardTimeout)
	}
	if elapsed > 10*shardTimeout {
		t.Fatalf("read stalled %v behind a hung shard (timeout %v)", elapsed, shardTimeout)
	}
	if _, hung, _ := ffs.Stats(); hung == 0 {
		t.Fatal("the hang fault never engaged")
	}
	m := rt.Snapshot()
	if m.Failovers < 1 {
		t.Fatalf("failovers = %d, want >= 1", m.Failovers)
	}
	// The timeout marked the hung shard down: the next read skips it
	// entirely and is fast.
	start = time.Now()
	c, got, _ = tc.get(t, name)
	if c != http.StatusOK || !bytes.Equal(got, want) {
		t.Fatalf("second read: status %d", c)
	}
	if e := time.Since(start); e > shardTimeout {
		t.Fatalf("second read took %v — hung shard not marked down", e)
	}
}

// TestChaosRebalanceRefusesCorruptSource: a rebalance whose only live copy
// of a dataset is rotten must fail that dataset's sync (source-side
// ?verify=1), never propagate the damaged bytes to a new replica.
func TestChaosRebalanceRefusesCorruptSource(t *testing.T) {
	tc := newTestCluster(t, 3, 2)
	const name = "cl-rbv"
	tc.put(t, name, "mode=abs&eb=0.01&chunk=512", fieldBytes(t, 4))
	holders := tc.holders(t, name)
	if len(holders) != 2 {
		t.Fatalf("holders %v", holders)
	}
	// Identify the non-holder before the topology changes.
	outsider := -1
	for i := range tc.shards {
		if i != holders[0] && i != holders[1] {
			outsider = i
		}
	}

	// Kill one holder; rot the survivor. The rebalance now wants to restore
	// R=2 by copying the only live copy — which fails verification.
	tc.shards[holders[1]].kill()
	corruptShardContainer(t, tc.shards[holders[0]], name)

	rep, err := tc.rt.Rebalance(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed == 0 {
		t.Fatalf("rebalance from a corrupt source reported no failures: %+v", rep)
	}
	if rep.Copied != 0 {
		t.Fatalf("rebalance copied %d datasets from a corrupt source", rep.Copied)
	}
	// The rot stayed put: the outsider shard received nothing.
	if _, ok := tc.shards[outsider].has(t, name); ok {
		t.Fatal("corrupt container propagated to a new replica")
	}
	if m := tc.rt.Snapshot(); m.ReplicaSyncFailures == 0 {
		t.Fatal("replica_sync_failures not counted")
	}
}

// TestShardTimeoutConfig pins the Config plumbing: zero defaults to 30s, a
// supplied Client suppresses the router-built transport.
func TestShardTimeoutConfig(t *testing.T) {
	rt, err := New(Config{Shards: []string{"http://localhost:1"}, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if rt.cfg.ShardTimeout != defaultShardTimeout {
		t.Fatalf("default ShardTimeout = %v", rt.cfg.ShardTimeout)
	}
	if rt.ownTransport == nil || rt.ownTransport.ResponseHeaderTimeout != defaultShardTimeout {
		t.Fatalf("router-built transport missing the header timeout: %+v", rt.ownTransport)
	}

	hc := &http.Client{}
	rt2, err := New(Config{Shards: []string{"http://localhost:1"}, ProbeInterval: -1,
		ShardTimeout: time.Second, Client: hc})
	if err != nil {
		t.Fatal(err)
	}
	defer rt2.Close()
	if rt2.hc != hc || rt2.ownTransport != nil {
		t.Fatal("supplied Client must be used verbatim, with no router-built transport")
	}

	rt3, err := New(Config{Shards: []string{"http://localhost:1"}, ProbeInterval: -1,
		ShardTimeout: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt3.Close()
	if rt3.ownTransport.ResponseHeaderTimeout != 0 {
		t.Fatal("negative ShardTimeout must disable the header timeout")
	}
}
