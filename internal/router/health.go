package router

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"rqm/internal/service"
)

// Shard health is tracked two ways. An active prober GETs each shard's
// /healthz on a fixed interval and requires FailAfter consecutive failures
// before marking a shard down (one dropped probe must not evict a shard
// from every read path). Passive detection is the fast path: a transport
// error while proxying marks the shard down immediately — the caller just
// proved it unreachable, waiting out the probe threshold would only send
// more requests into the same hole. Either way, a single successful probe
// restores the shard. A 503 readiness response (shard draining for
// shutdown) counts as a failed probe: the shard asked to be taken out of
// rotation before its listener closes.

// shardState is the mutable health record for one configured shard.
type shardState struct {
	url string

	mu          sync.Mutex
	healthy     bool
	consecFails int
	lastErr     string
	lastProbe   time.Time
	datasets    int // dataset count from the last successful /healthz body
}

// snapshotLocked copies the state for status reporting.
func (s *shardState) status() ShardStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ShardStatus{
		URL:                 s.url,
		Healthy:             s.healthy,
		ConsecutiveFailures: s.consecFails,
		Datasets:            s.datasets,
		LastError:           s.lastErr,
		LastProbe:           s.lastProbe,
	}
}

func (s *shardState) isHealthy() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.healthy
}

// markProbe records an active probe result under the FailAfter threshold.
func (s *shardState) markProbe(failAfter int, err error, datasets int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lastProbe = time.Now()
	if err == nil {
		s.healthy = true
		s.consecFails = 0
		s.lastErr = ""
		s.datasets = datasets
		return
	}
	s.consecFails++
	s.lastErr = err.Error()
	if s.consecFails >= failAfter {
		s.healthy = false
	}
}

// markUnreachable is the passive path: a proxied request just failed at the
// transport layer, so the shard is down now, threshold or not.
func (s *shardState) markUnreachable(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.healthy = false
	if s.consecFails == 0 {
		s.consecFails = 1
	}
	s.lastErr = err.Error()
}

// probeLoop runs until Close; each tick probes every shard in parallel.
func (rt *Router) probeLoop() {
	t := time.NewTicker(rt.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			rt.ProbeNow(context.Background())
		}
	}
}

// ProbeNow probes every shard once, synchronously. The rebalancer calls it
// before planning so placement decisions see the cluster as it is, not as
// it was one probe interval ago.
func (rt *Router) ProbeNow(ctx context.Context) {
	var wg sync.WaitGroup
	for _, sh := range rt.shards {
		wg.Add(1)
		go func(sh *shardState) {
			defer wg.Done()
			rt.probeShard(ctx, sh)
		}(sh)
	}
	wg.Wait()
}

// probeShard performs one /healthz round-trip against a shard and feeds the
// result through the failure threshold.
func (rt *Router) probeShard(ctx context.Context, sh *shardState) {
	timeout := rt.cfg.ProbeInterval
	if timeout <= 0 || timeout > 2*time.Second {
		timeout = 2 * time.Second
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	rt.count(&rt.probes, 1)
	datasets, err := rt.fetchHealth(ctx, sh.url)
	if err != nil {
		rt.count(&rt.probeFailures, 1)
	}
	sh.markProbe(rt.cfg.FailAfter, err, datasets)
}

// fetchHealth GETs a shard's readiness endpoint and extracts its dataset
// count. Any non-200 status — including 503 "draining" — is a probe failure.
func (rt *Router) fetchHealth(ctx context.Context, shardURL string) (datasets int, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, shardURL+"/healthz", nil)
	if err != nil {
		return 0, err
	}
	resp, err := rt.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, errStatus(resp)
	}
	var hr service.HealthResponse
	if derr := json.NewDecoder(resp.Body).Decode(&hr); derr == nil {
		datasets = hr.Datasets
	}
	return datasets, nil
}
