package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rqm"
	"rqm/internal/service"
	"rqm/internal/store"
)

// ---------------------------------------------------------------------------
// Multi-shard harness

// testShard is one rqserved-equivalent: a store-backed service behind a
// real listener that tests can kill (Close) to simulate a crashed shard.
type testShard struct {
	svc *service.Service
	st  *store.Store
	ts  *httptest.Server
}

func (s *testShard) kill() { s.ts.Close() }

// metrics fetches the shard's own counter snapshot.
func (s *testShard) metrics(t *testing.T) service.MetricsSnapshot {
	t.Helper()
	resp, err := http.Get(s.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m service.MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

// has reports whether the shard holds name, with its listing info. A dead
// shard (connection refused) simply holds nothing.
func (s *testShard) has(t *testing.T, name string) (service.DatasetInfo, bool) {
	t.Helper()
	resp, err := http.Get(s.ts.URL + "/v1/datasets/" + name + "?manifest=1")
	if err != nil {
		return service.DatasetInfo{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return service.DatasetInfo{}, false
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stat %s on %s: status %d", name, s.ts.URL, resp.StatusCode)
	}
	var info service.DatasetInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info, true
}

// raw fetches the shard's container bytes for name verbatim.
func (s *testShard) raw(t *testing.T, name string) []byte {
	t.Helper()
	resp, err := http.Get(s.ts.URL + "/v1/datasets/" + name + "?raw=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("raw %s on %s: status %d", name, s.ts.URL, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// testCluster is N shards fronted by one router (background prober off;
// tests drive ProbeNow explicitly for determinism).
type testCluster struct {
	shards []*testShard
	rt     *Router
	ts     *httptest.Server
}

func newShard(t *testing.T) *testShard {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	svc, err := service.New(service.Config{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc)
	t.Cleanup(ts.Close)
	return &testShard{svc: svc, st: st, ts: ts}
}

func newRouterOver(t *testing.T, shards []*testShard, replicas int) (*Router, *httptest.Server) {
	t.Helper()
	urls := make([]string, len(shards))
	for i, s := range shards {
		urls[i] = s.ts.URL
	}
	rt, err := New(Config{Shards: urls, Replicas: replicas, ProbeInterval: -1, FailAfter: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	ts := httptest.NewServer(rt)
	t.Cleanup(ts.Close)
	return rt, ts
}

func newTestCluster(t *testing.T, n, replicas int) *testCluster {
	t.Helper()
	tc := &testCluster{}
	for i := 0; i < n; i++ {
		tc.shards = append(tc.shards, newShard(t))
	}
	tc.rt, tc.ts = newRouterOver(t, tc.shards, replicas)
	return tc
}

// fieldBytes synthesizes one .rqmf payload; seed varies the data so
// distinct datasets have distinct containers and content hashes.
func fieldBytes(t testing.TB, seed uint64) []byte {
	t.Helper()
	g, err := rqm.GenerateField("nyx/temperature", seed, rqm.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	f, err := rqm.FieldFromData("cluster-test", rqm.Float64, g.Data, g.Dims...)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// put stores body under name through the router, asserting success, and
// returns the response.
func (tc *testCluster) put(t *testing.T, name, query string, body []byte) (service.DatasetInfo, *http.Response) {
	t.Helper()
	resp, err := http.Post(tc.ts.URL+"/v1/datasets/"+name+"?"+query, "application/octet-stream",
		bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("put %s via router: status %d: %s", name, resp.StatusCode, raw)
	}
	var info service.DatasetInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info, resp
}

// get reads the decompressed dataset through the router.
func (tc *testCluster) get(t *testing.T, name string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Get(tc.ts.URL + "/v1/datasets/" + name)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b, resp.Header
}

// holders returns the indexes of shards currently holding name.
func (tc *testCluster) holders(t *testing.T, name string) []int {
	t.Helper()
	var out []int
	for i, s := range tc.shards {
		if _, ok := s.has(t, name); ok {
			out = append(out, i)
		}
	}
	return out
}

func decodeErr(t *testing.T, resp *http.Response) service.ErrorBody {
	t.Helper()
	var eb service.ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Error.Code == "" {
		t.Fatalf("response is not the typed error envelope (err %v)", err)
	}
	return eb
}

// ---------------------------------------------------------------------------
// Replication

func TestClusterPutReplicatesToR(t *testing.T) {
	tc := newTestCluster(t, 3, 2)
	body := fieldBytes(t, 1)

	_, resp := tc.put(t, "cl-rep", "mode=abs&eb=0.01&chunk=512", body)
	if got := resp.Header.Get("X-RQM-Replicas"); got != "2/2" {
		t.Fatalf("X-RQM-Replicas = %q, want 2/2", got)
	}
	holders := tc.holders(t, "cl-rep")
	if len(holders) != 2 {
		t.Fatalf("dataset on shards %v, want exactly 2 replicas", holders)
	}
	want := tc.rt.ring.sequence("cl-rep")[:2]
	for i, h := range holders {
		found := false
		for _, w := range want {
			if h == w {
				found = true
			}
		}
		if !found {
			t.Fatalf("holder %d (%v) not in ring-desired set %v", i, holders, want)
		}
	}
	// Replicas are byte-identical: same container, same manifest version.
	a, b := tc.shards[holders[0]], tc.shards[holders[1]]
	if !bytes.Equal(a.raw(t, "cl-rep"), b.raw(t, "cl-rep")) {
		t.Fatal("replica containers differ after quorum write")
	}
	ia, _ := a.has(t, "cl-rep")
	ib, _ := b.has(t, "cl-rep")
	if !ia.CreatedAt.Equal(ib.CreatedAt) || ia.Generation != ib.Generation || ia.ContentHash != ib.ContentHash {
		t.Fatalf("replica manifests diverge: %+v vs %+v", ia, ib)
	}
	// Read through the router serves the field.
	code, got, _ := tc.get(t, "cl-rep")
	if code != http.StatusOK || !bytes.Equal(got, fieldRoundTrip(t, a, "cl-rep")) {
		t.Fatalf("router get: status %d, %d bytes", code, len(got))
	}
}

// fieldRoundTrip fetches the decompressed field directly from a shard, as
// the comparison oracle for router reads.
func fieldRoundTrip(t *testing.T, s *testShard, name string) []byte {
	t.Helper()
	resp, err := http.Get(s.ts.URL + "/v1/datasets/" + name)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// ---------------------------------------------------------------------------
// Failover: the acceptance scenario. Killing ANY single shard of a 3-shard
// R=2 cluster must not fail a single read — every dataset keeps one live
// replica and the router fails over to it within the same request.

func TestClusterKillAnyShardZeroFailedReads(t *testing.T) {
	const datasets = 8
	for kill := 0; kill < 3; kill++ {
		t.Run(fmt.Sprintf("kill-shard-%d", kill), func(t *testing.T) {
			tc := newTestCluster(t, 3, 2)
			// Cover both read paths: names whose PRIMARY is the doomed shard
			// (the read must fail over mid-request) and names that merely
			// keep a replica there.
			var names []string
			primaries := 0
			for i := 0; len(names) < datasets; i++ {
				name := fmt.Sprintf("cl-fo-%d-%d", kill, i)
				isPrimary := tc.rt.ring.sequence(name)[0] == kill
				if isPrimary && primaries < datasets/2 {
					names = append(names, name)
					primaries++
				} else if !isPrimary && len(names)-primaries < datasets-datasets/2 {
					names = append(names, name)
				}
			}
			if primaries == 0 {
				t.Fatal("no test name has the doomed shard as primary")
			}
			want := map[string][]byte{}
			for i, name := range names {
				body := fieldBytes(t, uint64(i+1))
				tc.put(t, name, "mode=abs&eb=0.01&chunk=512", body)
				_, field, _ := func() (int, []byte, http.Header) { return tc.get(t, name) }()
				want[name] = field
			}

			tc.shards[kill].kill()

			failedOver := 0
			for name, field := range want {
				code, got, hdr := tc.get(t, name)
				if code != http.StatusOK {
					t.Fatalf("read %s after killing shard %d: status %d", name, kill, code)
				}
				if !bytes.Equal(got, field) {
					t.Fatalf("read %s after killing shard %d: bytes differ", name, kill)
				}
				if hdr.Get("X-RQM-Failover") != "" {
					failedOver++
				}
			}
			if m := tc.rt.Snapshot(); m.Failovers == 0 {
				t.Fatalf("metrics report no failovers after killing a shard (reads that failed over: %d)", failedOver)
			}
			// The router learned passively: the dead shard is marked down.
			st := tc.rt.Status()
			if st.Healthy != 2 {
				t.Fatalf("cluster status: %d healthy shards after kill, want 2", st.Healthy)
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Rebalance

// TestClusterRebalanceAfterKill: after losing a shard, one rebalance pass
// restores R=2 for every dataset — by streaming raw containers, never by
// recompressing (byte-identical containers, preserved generation, zero new
// compresses on the receiving shards).
func TestClusterRebalanceAfterKill(t *testing.T) {
	const datasets = 6
	tc := newTestCluster(t, 3, 2)
	type ds struct {
		raw  []byte
		info service.DatasetInfo
	}
	want := map[string]ds{}
	for i := 0; i < datasets; i++ {
		name := fmt.Sprintf("cl-rb-%d", i)
		tc.put(t, name, "mode=rel&eb=1e-3&chunk=512", fieldBytes(t, uint64(i+1)))
		h := tc.holders(t, name)
		info, _ := tc.shards[h[0]].has(t, name)
		want[name] = ds{raw: tc.shards[h[0]].raw(t, name), info: info}
	}

	tc.shards[0].kill()

	// Baseline live-shard counters: rebalance must add raw puts, not
	// compression work.
	preCompresses := make([]int64, 3)
	preRawPuts := make([]int64, 3)
	for i := 1; i < 3; i++ {
		m := tc.shards[i].metrics(t)
		preCompresses[i] = m.Compresses
		preRawPuts[i] = m.DatasetRawPuts
	}

	resp, err := http.Post(tc.ts.URL+"/v1/cluster/rebalance", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("rebalance: status %d: %s", resp.StatusCode, raw)
	}
	var rep RebalanceReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.ShardsLive != 2 || rep.Datasets != datasets || rep.Failed != 0 {
		t.Fatalf("rebalance report %+v", rep)
	}
	if rep.Copied == 0 || rep.BytesMoved == 0 {
		t.Fatalf("rebalance copied nothing (%+v) — the killed shard held replicas", rep)
	}

	rawPutsSeen := int64(0)
	for name, w := range want {
		holders := 0
		for i := 1; i < 3; i++ {
			info, ok := tc.shards[i].has(t, name)
			if !ok {
				continue
			}
			holders++
			if !bytes.Equal(tc.shards[i].raw(t, name), w.raw) {
				t.Fatalf("%s on shard %d: container bytes differ after rebalance (recompressed?)", name, i)
			}
			if !info.CreatedAt.Equal(w.info.CreatedAt) || info.Generation != w.info.Generation ||
				info.ContentHash != w.info.ContentHash {
				t.Fatalf("%s on shard %d: manifest version changed: %+v -> %+v", name, i, w.info, info)
			}
		}
		if holders != 2 {
			t.Fatalf("%s has %d live replicas after rebalance, want 2", name, holders)
		}
	}
	for i := 1; i < 3; i++ {
		m := tc.shards[i].metrics(t)
		if m.Compresses != preCompresses[i] {
			t.Fatalf("shard %d ran %d compresses during rebalance — migration must move raw bytes",
				i, m.Compresses-preCompresses[i])
		}
		rawPutsSeen += m.DatasetRawPuts - preRawPuts[i]
	}
	if rawPutsSeen != int64(rep.Copied) {
		t.Fatalf("shards saw %d raw puts, report says %d copied", rawPutsSeen, rep.Copied)
	}

	// Idempotence: a second pass moves nothing.
	rep2, err := tc.rt.Rebalance(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Copied != 0 || rep2.Removed != 0 || rep2.Failed != 0 {
		t.Fatalf("second rebalance not a no-op: %+v", rep2)
	}
}

// TestClusterRebalanceAfterJoin: datasets written under a 2-shard topology
// are migrated onto a new third shard by a router that knows the grown
// ring, and strays outside the new desired sets are removed.
func TestClusterRebalanceAfterJoin(t *testing.T) {
	const datasets = 8
	shards := []*testShard{newShard(t), newShard(t), newShard(t)}

	// Phase 1: a router over the first two shards only.
	_, oldTS := newRouterOver(t, shards[:2], 2)
	want := map[string][]byte{}
	for i := 0; i < datasets; i++ {
		name := fmt.Sprintf("cl-join-%d", i)
		body := fieldBytes(t, uint64(i+1))
		resp, err := http.Post(oldTS.URL+"/v1/datasets/"+name+"?mode=abs&eb=0.01&chunk=512",
			"application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("put %s: status %d", name, resp.StatusCode)
		}
		resp.Body.Close()
		info, ok := shards[0].has(t, name)
		_ = info
		if !ok {
			if _, ok := shards[1].has(t, name); !ok {
				t.Fatalf("put %s landed nowhere", name)
			}
		}
		// Record the container from whichever shard holds it.
		for _, s := range shards[:2] {
			if _, ok := s.has(t, name); ok {
				want[name] = s.raw(t, name)
				break
			}
		}
	}

	// Phase 2: shard 3 joins; a new router sees the grown ring.
	rt2, _ := newRouterOver(t, shards, 2)
	rep, err := rt2.Rebalance(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.ShardsLive != 3 || rep.Datasets != datasets || rep.Failed != 0 {
		t.Fatalf("rebalance report %+v", rep)
	}
	if rep.Copied == 0 {
		t.Fatal("join rebalance copied nothing — the new shard should claim ring arcs")
	}

	newShardHolds := 0
	for name, raw := range want {
		desired := rt2.ring.sequence(name)[:2]
		holders := map[int]bool{}
		for i, s := range shards {
			if _, ok := s.has(t, name); ok {
				holders[i] = true
				if !bytes.Equal(s.raw(t, name), raw) {
					t.Fatalf("%s on shard %d: bytes differ after join rebalance", name, i)
				}
			}
		}
		if len(holders) != 2 {
			t.Fatalf("%s has holders %v, want exactly its 2 desired replicas %v", name, holders, desired)
		}
		for _, d := range desired {
			if !holders[d] {
				t.Fatalf("%s missing from desired shard %d (holders %v)", name, d, holders)
			}
		}
		if holders[2] {
			newShardHolds++
		}
	}
	if newShardHolds == 0 {
		t.Fatal("no dataset migrated to the joined shard across the whole keyspace")
	}
	if rep.Removed == 0 {
		t.Fatal("no stray replicas removed — migration to the new shard must displace old copies")
	}
}

// ---------------------------------------------------------------------------
// Quorum and write-path failure

// TestClusterQuorumFailure: with a replica freshly dead (router not yet
// aware), a write reaching only 1/2 replicas is a typed quorum failure —
// and the very next write succeeds because the failure marked the shard
// down and rerouted.
func TestClusterQuorumFailure(t *testing.T) {
	tc := newTestCluster(t, 3, 2)
	body := fieldBytes(t, 1)

	// Find a name whose desired set includes shard 0.
	name := ""
	for i := 0; i < 1000; i++ {
		cand := fmt.Sprintf("cl-q-%d", i)
		seq := tc.rt.ring.sequence(cand)
		if seq[0] == 0 || seq[1] == 0 {
			name = cand
			break
		}
	}
	if name == "" {
		t.Fatal("no candidate name routed to shard 0")
	}
	tc.shards[0].kill()

	resp, err := http.Post(tc.ts.URL+"/v1/datasets/"+name+"?mode=abs&eb=0.01",
		"application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("put with dead replica: status %d, want 502", resp.StatusCode)
	}
	if eb := decodeErr(t, resp); eb.Error.Code != "quorum_failed" {
		t.Fatalf("error code %q, want quorum_failed", eb.Error.Code)
	}
	if m := tc.rt.Snapshot(); m.QuorumFailures != 1 {
		t.Fatalf("QuorumFailures = %d, want 1", m.QuorumFailures)
	}

	// The failed fan-out marked shard 0 down; the retry routes around it.
	tc.put(t, name, "mode=abs&eb=0.01", body)
	if h := tc.holders(t, name); len(h) != 2 {
		t.Fatalf("post-failure put landed on %v, want 2 live replicas", h)
	}
}

// ---------------------------------------------------------------------------
// Proxy edge cases

// TestClusterEscapedNames: percent-encoded names survive the
// decode-reencode hop through the router, and an encoded slash (a name the
// store forbids) comes back as the shard's typed 400, not a routing error.
func TestClusterEscapedNames(t *testing.T) {
	tc := newTestCluster(t, 3, 2)
	body := fieldBytes(t, 1)

	tc.put(t, "nyx.temp-1_2", "mode=abs&eb=0.01", body)
	// %2E == '.', %5F == '_': same dataset through an escaped spelling.
	resp, err := http.Get(tc.ts.URL + "/v1/datasets/nyx%2Etemp-1%5F2?manifest=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("escaped-name stat: status %d", resp.StatusCode)
	}
	var info service.DatasetInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil || info.Name != "nyx.temp-1_2" {
		t.Fatalf("escaped-name stat decoded %+v (err %v)", info, err)
	}

	// Encoded slash: one path segment to both muxes, rejected by the store's
	// name charset with the typed envelope end to end.
	resp2, err := http.Post(tc.ts.URL+"/v1/datasets/nyx%2Ftemp?mode=abs&eb=0.01",
		"application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("encoded-slash put: status %d, want 400", resp2.StatusCode)
	}
	if eb := decodeErr(t, resp2); eb.Error.Code != "bad_name" {
		t.Fatalf("encoded-slash put: code %q, want bad_name", eb.Error.Code)
	}
}

// TestClusterEmptyListMerge: an empty cluster lists as "datasets": [] —
// a JSON array, never null — with full shard coverage reported.
func TestClusterEmptyListMerge(t *testing.T) {
	tc := newTestCluster(t, 3, 2)
	resp, err := http.Get(tc.ts.URL + "/v1/datasets")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("empty list: status %d", resp.StatusCode)
	}
	if !strings.Contains(string(raw), `"datasets":[]`) {
		t.Fatalf("empty merge must serialize as an empty array, got %s", raw)
	}
	if got := resp.Header.Get("X-RQM-Shards-Listed"); got != "3/3" {
		t.Fatalf("X-RQM-Shards-Listed = %q, want 3/3", got)
	}
}

// TestClusterListMergesAndDeleteFansOut: list sees each dataset once across
// replicas; delete removes every replica.
func TestClusterListMergesAndDeleteFansOut(t *testing.T) {
	tc := newTestCluster(t, 3, 2)
	for i := 0; i < 4; i++ {
		tc.put(t, fmt.Sprintf("cl-ls-%d", i), "mode=abs&eb=0.01", fieldBytes(t, uint64(i+1)))
	}
	resp, err := http.Get(tc.ts.URL + "/v1/datasets")
	if err != nil {
		t.Fatal(err)
	}
	var lr service.ListDatasetsResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(lr.Datasets) != 4 {
		t.Fatalf("merged list has %d entries, want 4 (replicas must dedupe)", len(lr.Datasets))
	}

	req, _ := http.NewRequest(http.MethodDelete, tc.ts.URL+"/v1/datasets/cl-ls-0", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var dr DeleteResponse
	if err := json.NewDecoder(dresp.Body).Decode(&dr); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK || dr.Replicas != 2 {
		t.Fatalf("delete: status %d, %+v (want both replicas dropped)", dresp.StatusCode, dr)
	}
	if h := tc.holders(t, "cl-ls-0"); len(h) != 0 {
		t.Fatalf("dataset survives on shards %v after fan-out delete", h)
	}
	// A second delete is a clean typed 404.
	dresp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer dresp2.Body.Close()
	if dresp2.StatusCode != http.StatusNotFound {
		t.Fatalf("double delete: status %d, want 404", dresp2.StatusCode)
	}
	if eb := decodeErr(t, dresp2); eb.Error.Code != "dataset_not_found" {
		t.Fatalf("double delete: code %q", eb.Error.Code)
	}
}

// TestClusterCASConflictThroughRouter: the store's Replace CAS surfaces as
// the typed 409 through the proxy — the cluster's conflict arbiter is
// reachable end to end.
func TestClusterCASConflictThroughRouter(t *testing.T) {
	tc := newTestCluster(t, 3, 2)
	body := fieldBytes(t, 1)
	tc.put(t, "cl-cas", "mode=abs&eb=0.01", body)

	resp, err := http.Post(tc.ts.URL+"/v1/datasets/cl-cas?mode=abs&eb=0.01&if-generation=7",
		"application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale conditional put: status %d, want 409", resp.StatusCode)
	}
	if eb := decodeErr(t, resp); eb.Error.Code != "conflict" {
		t.Fatalf("stale conditional put: code %q, want conflict", eb.Error.Code)
	}

	// The matching generation goes through and bumps every replica.
	info, _ := tc.put(t, "cl-cas", "mode=abs&eb=0.01&if-generation=0", body)
	if info.Generation != 1 {
		t.Fatalf("conditional put generation %d, want 1", info.Generation)
	}
	for _, i := range tc.holders(t, "cl-cas") {
		got, _ := tc.shards[i].has(t, "cl-cas")
		if got.Generation != 1 {
			t.Fatalf("shard %d at generation %d after conditional put", i, got.Generation)
		}
	}
}

// TestClusterRecompactRepairsReplicas: recompaction runs on one replica;
// the router then raw-syncs the rewritten container to the others so the
// replica set converges on the new generation without recompressing twice.
func TestClusterRecompactRepairsReplicas(t *testing.T) {
	tc := newTestCluster(t, 3, 2)
	tc.put(t, "cl-rc", "mode=rel&eb=1e-4&chunk=512", fieldBytes(t, 1))

	resp, err := http.Post(tc.ts.URL+"/v1/datasets/cl-rc/recompact?target-ratio=100", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recompact via router: status %d: %s", resp.StatusCode, raw)
	}
	var rr service.RecompactResponse
	if err := json.Unmarshal(raw, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Skipped {
		t.Fatalf("recompact skipped (%s) — test wants a rewrite", rr.Reason)
	}
	if got := resp.Header.Get("X-RQM-Replicas-Synced"); got != "1" {
		t.Fatalf("X-RQM-Replicas-Synced = %q, want 1", got)
	}
	h := tc.holders(t, "cl-rc")
	if len(h) != 2 {
		t.Fatalf("holders after recompact: %v", h)
	}
	a, _ := tc.shards[h[0]].has(t, "cl-rc")
	b, _ := tc.shards[h[1]].has(t, "cl-rc")
	if a.Generation != rr.Generation || b.Generation != rr.Generation {
		t.Fatalf("replica generations %d/%d, want %d on both", a.Generation, b.Generation, rr.Generation)
	}
	if !bytes.Equal(tc.shards[h[0]].raw(t, "cl-rc"), tc.shards[h[1]].raw(t, "cl-rc")) {
		t.Fatal("replica containers differ after recompact repair")
	}
}

// ---------------------------------------------------------------------------
// Health, status, metrics

// TestRouterHealthAndDrainAwareProbe: the prober demotes a draining shard
// (503 readiness) and the router's own healthz degrades accordingly.
func TestRouterHealthAndDrainAwareProbe(t *testing.T) {
	tc := newTestCluster(t, 3, 2)
	resp, err := http.Get(tc.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h RouterHealth
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || h.Status != "ok" || h.Healthy != 3 {
		t.Fatalf("healthz %d %+v", resp.StatusCode, h)
	}

	// A draining shard flips its readiness; one probe pass (FailAfter=1 in
	// the harness) takes it out of rotation.
	tc.shards[1].svc.BeginDrain()
	tc.rt.ProbeNow(context.Background())
	st := tc.rt.Status()
	if st.Healthy != 2 || st.Shards[1].Healthy {
		t.Fatalf("draining shard still in rotation: %+v", st.Shards)
	}

	resp2, err := http.Get(tc.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var h2 RouterHealth
	if err := json.NewDecoder(resp2.Body).Decode(&h2); err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusOK || h2.Status != "degraded" {
		t.Fatalf("healthz with draining shard: %d %+v", resp2.StatusCode, h2)
	}
}

// TestRouterMetricsContentTypeAndCounters: /metrics is explicit JSON and
// counts the proxy work done.
func TestRouterMetricsContentTypeAndCounters(t *testing.T) {
	tc := newTestCluster(t, 3, 2)
	tc.put(t, "cl-m", "mode=abs&eb=0.01", fieldBytes(t, 1))
	tc.get(t, "cl-m")

	resp, err := http.Get(tc.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("router /metrics Content-Type = %q", ct)
	}
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.ProxiedPuts != 1 || m.ProxiedGets != 1 || m.ShardsTotal != 3 || m.ShardsHealthy != 3 {
		t.Fatalf("metrics %+v", m)
	}
	if m.Requests < 3 {
		t.Fatalf("requests counter %d, want >= 3", m.Requests)
	}
}

// TestRouterRejectsComputeEndpoints: non-dataset service routes are not
// proxied — they are shard-local and carry no placement key.
func TestRouterRejectsComputeEndpoints(t *testing.T) {
	tc := newTestCluster(t, 3, 2)
	resp, err := http.Post(tc.ts.URL+"/v1/compress", "application/octet-stream", bytes.NewReader([]byte("x")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("compress via router: status %d, want 404", resp.StatusCode)
	}
	if eb := decodeErr(t, resp); eb.Error.Code != "not_routable" {
		t.Fatalf("compress via router: code %q", eb.Error.Code)
	}
}
