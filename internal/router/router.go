// Package router implements the stateless cluster tier in front of a fleet
// of rqserved shards. Datasets are placed on a consistent-hash ring with
// virtual nodes; each dataset lives on R replicas (write-to-R with a
// majority quorum, read-from-any-healthy with failover). The router holds
// no durable state of its own — placement is a pure function of (shard
// list, vnodes, name), health is re-learned by probing, and divergent
// replicas are arbitrated by the manifests' (created_at, generation)
// version order, so any number of routers can front the same shards.
package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rqm/internal/service"
)

// Defaults for zero values in Config.
const (
	defaultReplicas      = 2
	defaultVNodes        = 64
	defaultProbeInterval = 2 * time.Second
	defaultFailAfter     = 3
	defaultMaxBodyBytes  = 1 << 30
	defaultShardTimeout  = 30 * time.Second
)

// errBodyLimit caps how much of a shard error/success body the router
// buffers when it must inspect or replay it (quorum writes, fan-outs).
const errBodyLimit = 1 << 20

// Config configures a Router.
type Config struct {
	// Shards lists the rqserved base URLs (scheme://host:port, no trailing
	// slash) that form the ring. Order matters: ring placement hashes the
	// shard's position in this list, so a stable order across router
	// restarts (and across multiple routers) keeps placements stable.
	Shards []string
	// Replicas is R, the number of shards each dataset lives on
	// (default 2, capped at len(Shards)).
	Replicas int
	// VNodes is the number of virtual nodes per shard (default 64).
	VNodes int
	// ProbeInterval is the health-probe period (default 2s). Negative
	// disables the background prober (tests drive ProbeNow directly).
	ProbeInterval time.Duration
	// FailAfter is how many consecutive probe failures mark a shard down
	// (default 3). Passive transport errors mark down immediately.
	FailAfter int
	// MaxBodyBytes caps buffered write bodies (default 1 GiB).
	MaxBodyBytes int64
	// ShardTimeout bounds how long a shard may take to dial and to return
	// response HEADERS on any proxied request (default 30s; negative
	// disables). It is deliberately streaming-aware: a shard slowly sending
	// a large body is fine — only a shard that sits silent before
	// committing a response trips it, so a hung shard triggers failover
	// instead of stalling the proxied read forever.
	ShardTimeout time.Duration
	// Client is the outbound HTTP client (default: http.DefaultTransport's
	// pooling with ShardTimeout applied as dial + response-header budget;
	// per-request contexts additionally bound probe time). Supplying a
	// Client overrides ShardTimeout entirely.
	Client *http.Client
}

// Router proxies the dataset API across the shard fleet.
type Router struct {
	cfg          Config
	ring         *ring
	shards       []*shardState
	hc           *http.Client
	ownTransport *http.Transport // set when the router built its own client
	mux          *http.ServeMux
	start        time.Time
	stop         chan struct{}
	closed       sync.Once

	// repairing dedupes in-flight read-repairs by dataset name, so a burst
	// of reads against a corrupt replica schedules one repair, not one per
	// request.
	repairMu  sync.Mutex
	repairing map[string]bool

	// snapMu makes /metrics a consistent cut: increments share an RLock,
	// Snapshot takes the write lock (same pattern as internal/service).
	snapMu              sync.RWMutex
	requests            atomic.Int64
	errors              atomic.Int64
	proxiedPuts         atomic.Int64
	proxiedGets         atomic.Int64
	proxiedLists        atomic.Int64
	proxiedDeletes      atomic.Int64
	proxiedSlices       atomic.Int64
	proxiedRecompacts   atomic.Int64
	proxiedPromotes     atomic.Int64
	proxiedDemotes      atomic.Int64
	failovers           atomic.Int64
	readRepairs         atomic.Int64
	readRepairFailures  atomic.Int64
	quorumFailures      atomic.Int64
	replicaSyncs        atomic.Int64
	replicaSyncFailures atomic.Int64
	rebalances          atomic.Int64
	rebalanceCopied     atomic.Int64
	rebalanceRemoved    atomic.Int64
	rebalanceBytes      atomic.Int64
	probes              atomic.Int64
	probeFailures       atomic.Int64
}

// New validates cfg, builds the ring, and starts the health prober (unless
// ProbeInterval < 0). Callers own Close.
func New(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("router: at least one shard required")
	}
	seen := map[string]bool{}
	for i, s := range cfg.Shards {
		s = strings.TrimRight(s, "/")
		if s == "" {
			return nil, fmt.Errorf("router: empty shard URL at index %d", i)
		}
		u, err := url.Parse(s)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("router: shard %q is not an absolute URL", cfg.Shards[i])
		}
		if seen[s] {
			return nil, fmt.Errorf("router: duplicate shard %q", s)
		}
		seen[s] = true
		cfg.Shards[i] = s
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = defaultReplicas
	}
	if cfg.Replicas > len(cfg.Shards) {
		cfg.Replicas = len(cfg.Shards)
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = defaultVNodes
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = defaultProbeInterval
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = defaultFailAfter
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = defaultMaxBodyBytes
	}
	if cfg.ShardTimeout == 0 {
		cfg.ShardTimeout = defaultShardTimeout
	}
	rt := &Router{
		cfg:       cfg,
		ring:      newRing(len(cfg.Shards), cfg.VNodes),
		hc:        cfg.Client,
		start:     time.Now(),
		stop:      make(chan struct{}),
		repairing: map[string]bool{},
	}
	if rt.hc == nil {
		rt.ownTransport = shardTransport(cfg.ShardTimeout)
		rt.hc = &http.Client{Transport: rt.ownTransport}
	}
	for _, s := range cfg.Shards {
		// Shards start healthy: an idle cluster must route immediately, and
		// the first failed request or probe corrects optimism within one
		// round-trip.
		rt.shards = append(rt.shards, &shardState{url: s, healthy: true})
	}
	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)
	rt.mux.HandleFunc("GET /v1/cluster/status", rt.handleClusterStatus)
	rt.mux.HandleFunc("POST /v1/cluster/rebalance", rt.handleRebalance)
	rt.mux.HandleFunc("GET /v1/datasets", rt.handleList)
	rt.mux.HandleFunc("POST /v1/datasets/{name}", rt.handlePut)
	rt.mux.HandleFunc("GET /v1/datasets/{name}", rt.handleGet)
	rt.mux.HandleFunc("DELETE /v1/datasets/{name}", rt.handleDelete)
	rt.mux.HandleFunc("GET /v1/datasets/{name}/slice", rt.handleSlice)
	rt.mux.HandleFunc("POST /v1/datasets/{name}/recompact", rt.handleRecompact)
	rt.mux.HandleFunc("POST /v1/datasets/{name}/promote", rt.handlePromote)
	rt.mux.HandleFunc("POST /v1/datasets/{name}/demote", rt.handleDemote)
	rt.mux.HandleFunc("/", rt.handleNotRoutable)
	if cfg.ProbeInterval > 0 {
		go rt.probeLoop()
	}
	return rt, nil
}

// shardTransport builds the router's outbound transport: the default
// transport's connection pooling plus the shard timeout applied where it is
// streaming-safe — on the dial and on time-to-response-headers, never on
// body transfer. (http.Client.Timeout would be wrong here: it covers the
// whole exchange and would kill long container streams mid-body.)
func shardTransport(timeout time.Duration) *http.Transport {
	tr, ok := http.DefaultTransport.(*http.Transport)
	if ok {
		tr = tr.Clone()
	} else {
		tr = &http.Transport{}
	}
	if timeout > 0 {
		tr.ResponseHeaderTimeout = timeout
		tr.DialContext = (&net.Dialer{Timeout: timeout, KeepAlive: 30 * time.Second}).DialContext
	}
	return tr
}

// Close stops the background prober and releases pooled shard connections.
// Idempotent.
func (rt *Router) Close() {
	rt.closed.Do(func() {
		close(rt.stop)
		if rt.ownTransport != nil {
			rt.ownTransport.CloseIdleConnections()
		}
	})
}

// Quorum is the write majority: more than half of R.
func (rt *Router) Quorum() int { return rt.cfg.Replicas/2 + 1 }

func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt.count(&rt.requests, 1)
	rt.mux.ServeHTTP(w, r)
}

// count bumps a counter under the snapshot read-lock (see snapMu).
func (rt *Router) count(c *atomic.Int64, delta int64) {
	rt.snapMu.RLock()
	c.Add(delta)
	rt.snapMu.RUnlock()
}

// ---------------------------------------------------------------------------
// Placement

// candidates returns the shard states in ring order for name, healthy ones
// first (each group keeps ring order). Reads walk this list; writes take
// the first R healthy entries.
func (rt *Router) candidates(name string) (healthy, down []*shardState) {
	for _, idx := range rt.ring.sequence(name) {
		sh := rt.shards[idx]
		if sh.isHealthy() {
			healthy = append(healthy, sh)
		} else {
			down = append(down, sh)
		}
	}
	return healthy, down
}

// writeTargets is the current write set for name: the first R healthy
// shards in ring order. When replicas of the ideal set are down, their ring
// successors stand in (sloppy placement) so writes stay available through
// an outage; a later rebalance moves the data home.
func (rt *Router) writeTargets(name string) []*shardState {
	healthy, _ := rt.candidates(name)
	if len(healthy) > rt.cfg.Replicas {
		healthy = healthy[:rt.cfg.Replicas]
	}
	return healthy
}

// desiredReplicas returns the ideal R-replica set for name over LIVE shards
// only — the rebalancer's notion of "where this dataset belongs right now".
func (rt *Router) desiredReplicas(name string) []*shardState {
	return rt.writeTargets(name)
}

// ---------------------------------------------------------------------------
// Shared proxy plumbing

// datasetPath builds the shard-side path for a dataset name, re-escaping it
// (PathValue hands back the decoded form).
func datasetPath(name string) string { return "/v1/datasets/" + url.PathEscape(name) }

// errStatus summarizes a non-2xx shard response, preferring the typed
// envelope's message.
func errStatus(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, errBodyLimit))
	var eb service.ErrorBody
	if json.Unmarshal(body, &eb) == nil && eb.Error.Code != "" {
		return fmt.Errorf("shard returned %d %s: %s", resp.StatusCode, eb.Error.Code, eb.Error.Message)
	}
	return fmt.Errorf("shard returned status %d", resp.StatusCode)
}

// writeJSON mirrors the shard-side envelope conventions.
func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeErr emits the same typed error envelope the shards use, so clients
// see one error schema whether they talk to a shard or the router.
func (rt *Router) writeErr(w http.ResponseWriter, status int, code, format string, args ...interface{}) {
	rt.count(&rt.errors, 1)
	var eb service.ErrorBody
	eb.Error.Code = code
	eb.Error.Message = fmt.Sprintf(format, args...)
	writeJSON(w, status, &eb)
}

// copyProxyHeaders forwards the request headers that matter to shards:
// content negotiation plus every X-RQM-* knob (the service accepts all its
// query parameters as X-RQM-<name> headers too).
func copyProxyHeaders(dst, src http.Header) {
	for _, k := range []string{"Content-Type", "Accept"} {
		if v := src.Get(k); v != "" {
			dst.Set(k, v)
		}
	}
	for k, vs := range src {
		if strings.HasPrefix(k, "X-Rqm-") {
			dst[k] = vs
		}
	}
}

// relayHeaders copies the response headers a shard sets onto the router's
// response: body metadata and every X-RQM-* annotation.
func relayHeaders(dst, src http.Header) {
	for _, k := range []string{"Content-Type", "Content-Length", "Retry-After"} {
		if v := src.Get(k); v != "" {
			dst.Set(k, v)
		}
	}
	for k, vs := range src {
		if strings.HasPrefix(k, "X-Rqm-") {
			dst[k] = vs
		}
	}
}

// shardRequest builds an outbound request to one shard, carrying the query
// string and proxy headers from the inbound request.
func shardRequest(ctx context.Context, method string, sh *shardState, path, rawQuery string, hdr http.Header, body io.Reader) (*http.Request, error) {
	u := sh.url + path
	if rawQuery != "" {
		u += "?" + rawQuery
	}
	req, err := http.NewRequestWithContext(ctx, method, u, body)
	if err != nil {
		return nil, err
	}
	if hdr != nil {
		copyProxyHeaders(req.Header, hdr)
	}
	return req, nil
}

// corruptCodes are the shard error codes that mean "this replica's stored
// copy is damaged" — the read-repair trigger — as opposed to a bad request
// or an unavailable shard.
var corruptCodes = map[string]bool{
	"corrupt_dataset":  true,
	"manifest_corrupt": true,
}

// envelopeCode extracts the stable error code from a buffered shard error
// body ("" when the body is not the typed envelope).
func envelopeCode(body []byte) string {
	var eb service.ErrorBody
	if json.Unmarshal(body, &eb) == nil {
		return eb.Error.Code
	}
	return ""
}

// proxyRead streams a GET from the first candidate that can serve it.
// Transport errors and 5xx responses fail over to the next replica (the
// shard is marked down on transport errors so subsequent requests skip it);
// a 404 keeps trying — with R>1 a lagging replica may miss a dataset its
// peer holds — and only becomes the answer when no replica has it.
//
// Read-repair: a replica answering with a stored-corruption code (the
// shard's verify-before-serve turns rot into a typed corrupt_dataset /
// manifest_corrupt instead of a truncated body) also fails over — the
// client still gets a clean answer from a healthy peer — and is remembered;
// after a successful serve the good replica's container is asynchronously
// re-replicated over each remembered bad copy through the framed raw-put
// path. Other 4xx responses (bad arguments, a plain 422 on client input)
// are the request's own answer and are relayed as-is.
func (rt *Router) proxyRead(w http.ResponseWriter, r *http.Request, name, path string) {
	healthy, down := rt.candidates(name)
	cands := append(healthy, down...)
	if len(cands) == 0 {
		rt.writeErr(w, http.StatusServiceUnavailable, "no_shards", "no shards configured")
		return
	}
	sawNotFound := false
	var corrupt []*shardState // replicas whose stored copy tripped verification
	for i, sh := range cands {
		req, err := shardRequest(r.Context(), http.MethodGet, sh, path, r.URL.RawQuery, r.Header, nil)
		if err != nil {
			rt.writeErr(w, http.StatusBadGateway, "proxy_failed", "%v", err)
			return
		}
		resp, err := rt.hc.Do(req)
		if err != nil {
			if r.Context().Err() != nil {
				rt.writeErr(w, http.StatusBadGateway, "proxy_failed", "%v", r.Context().Err())
				return
			}
			sh.markUnreachable(err)
			rt.count(&rt.failovers, 1)
			continue
		}
		switch {
		case resp.StatusCode >= 500 || resp.StatusCode == http.StatusUnprocessableEntity:
			// Both can carry a corruption verdict (422 corrupt_dataset, 500
			// manifest_corrupt); buffer the envelope to tell. A plain 422 —
			// the request's own fault, e.g. undecodable client input — is
			// final and relayed; everything else fails over.
			body, _ := io.ReadAll(io.LimitReader(resp.Body, errBodyLimit))
			resp.Body.Close()
			code := envelopeCode(body)
			if corruptCodes[code] {
				corrupt = append(corrupt, sh)
			} else if resp.StatusCode == http.StatusUnprocessableEntity {
				if i > 0 {
					w.Header().Set("X-RQM-Failover", strconv.Itoa(i))
				}
				w.Header().Set("X-RQM-Shard", sh.url)
				relayHeaders(w.Header(), resp.Header)
				w.Header().Del("Content-Length") // body was re-buffered
				rt.count(&rt.errors, 1)
				w.WriteHeader(resp.StatusCode)
				_, _ = w.Write(body)
				return
			}
			rt.count(&rt.failovers, 1)
			continue
		case resp.StatusCode == http.StatusNotFound:
			resp.Body.Close()
			sawNotFound = true
			continue
		default:
			if i > 0 {
				w.Header().Set("X-RQM-Failover", strconv.Itoa(i))
			}
			w.Header().Set("X-RQM-Shard", sh.url)
			relayHeaders(w.Header(), resp.Header)
			w.WriteHeader(resp.StatusCode)
			_, _ = io.Copy(w, resp.Body)
			resp.Body.Close()
			if resp.StatusCode < 300 && len(corrupt) > 0 {
				rt.scheduleReadRepair(sh, corrupt, name)
			}
			return
		}
	}
	switch {
	case len(corrupt) > 0:
		// Every replica that holds the dataset holds damaged bytes: surface
		// the verdict, not a generic gateway error (and not a 404 — a corrupt
		// copy is proof the dataset exists). Retrying will not help;
		// restoring from elsewhere will.
		rt.writeErr(w, http.StatusUnprocessableEntity, "corrupt_dataset",
			"every replica of dataset %q failed integrity verification", name)
	case sawNotFound:
		rt.writeErr(w, http.StatusNotFound, "dataset_not_found", "dataset %q not found on any replica", name)
	default:
		rt.writeErr(w, http.StatusBadGateway, "no_replica", "no replica could serve dataset %q", name)
	}
}

// scheduleReadRepair asynchronously re-replicates the container that just
// served a read over each replica that answered the same read with a
// corruption verdict. The copy rides syncReplica, whose protocol makes the
// repair safe at both ends: the source re-verifies its own chunk CRCs
// before streaming (?verify=1 — a corrupt "good" copy aborts rather than
// propagates) and the target re-verifies its committed copy before taking
// the idempotent same-version skip (?repair=1 — a rotten copy with an
// intact manifest is replaced, not "already there"). In-flight repairs are
// deduped per dataset.
func (rt *Router) scheduleReadRepair(src *shardState, bad []*shardState, name string) {
	rt.repairMu.Lock()
	if rt.repairing[name] {
		rt.repairMu.Unlock()
		return
	}
	rt.repairing[name] = true
	rt.repairMu.Unlock()
	timeout := rt.cfg.ShardTimeout
	if timeout <= 0 {
		timeout = defaultShardTimeout
	}
	go func() {
		defer func() {
			rt.repairMu.Lock()
			delete(rt.repairing, name)
			rt.repairMu.Unlock()
		}()
		// Repairs outlive the read that triggered them: a fresh context, with
		// a generous multiple of the shard timeout bounding the whole copy.
		ctx, cancel := context.WithTimeout(context.Background(), 4*timeout)
		defer cancel()
		for _, sh := range bad {
			if _, _, err := rt.syncReplica(ctx, src, sh, name); err != nil {
				rt.count(&rt.readRepairFailures, 1)
				continue
			}
			rt.count(&rt.readRepairs, 1)
		}
	}()
}

// ---------------------------------------------------------------------------
// Dataset handlers

type shardResult struct {
	sh     *shardState
	status int
	header http.Header
	body   []byte
	err    error
}

// fanOut issues the same request against every target in parallel and
// collects buffered results in target order.
func (rt *Router) fanOut(ctx context.Context, method string, targets []*shardState, path, rawQuery string, hdr http.Header, body []byte) []shardResult {
	results := make([]shardResult, len(targets))
	var wg sync.WaitGroup
	for i, sh := range targets {
		wg.Add(1)
		go func(i int, sh *shardState) {
			defer wg.Done()
			res := shardResult{sh: sh}
			var rd io.Reader
			if body != nil {
				rd = bytes.NewReader(body)
			}
			req, err := shardRequest(ctx, method, sh, path, rawQuery, hdr, rd)
			if err != nil {
				res.err = err
				results[i] = res
				return
			}
			resp, err := rt.hc.Do(req)
			if err != nil {
				if ctx.Err() == nil {
					sh.markUnreachable(err)
				}
				res.err = err
				results[i] = res
				return
			}
			res.status = resp.StatusCode
			res.header = resp.Header
			res.body, _ = io.ReadAll(io.LimitReader(resp.Body, errBodyLimit))
			resp.Body.Close()
			results[i] = res
		}(i, sh)
	}
	wg.Wait()
	return results
}

// relayBuffered writes one buffered shard response through to the client.
func relayBuffered(w http.ResponseWriter, res shardResult) {
	relayHeaders(w.Header(), res.header)
	w.Header().Del("Content-Length") // body was re-buffered; let net/http set it
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}

// handlePut fans a dataset write out to the R-replica write set and
// requires a majority quorum of 2xx responses. The body is buffered once
// and replayed to each replica. On quorum the primary's response is
// relayed with X-RQM-Replicas: "ok/attempted"; with zero successes and at
// least one real HTTP error the first such error is relayed (a bad request
// should read as 4xx, not as a router failure); anything else is a 502
// quorum failure.
func (rt *Router) handlePut(w http.ResponseWriter, r *http.Request) {
	rt.count(&rt.proxiedPuts, 1)
	name := r.PathValue("name")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes))
	if err != nil {
		rt.writeErr(w, http.StatusRequestEntityTooLarge, "body_too_large", "request body exceeds %d bytes", rt.cfg.MaxBodyBytes)
		return
	}
	targets := rt.writeTargets(name)
	if len(targets) == 0 {
		rt.writeErr(w, http.StatusServiceUnavailable, "no_shards", "no healthy shards")
		return
	}
	// Stamp one identity timestamp for the whole fan-out: every replica
	// commits the same (created_at, generation) version, so the version
	// arbiter sees agreement, not R microsecond-skewed "divergent" copies.
	q := r.URL.Query()
	if q.Get("created-at") == "" && r.Header.Get("X-RQM-created-at") == "" {
		q.Set("created-at", time.Now().UTC().Format(time.RFC3339Nano))
	}
	results := rt.fanOut(r.Context(), http.MethodPost, targets, datasetPath(name), q.Encode(), r.Header, body)
	quorum := rt.Quorum()
	if quorum > len(targets) {
		quorum = len(targets)
	}
	ok := 0
	firstOK, firstHTTPErr := -1, -1
	for i, res := range results {
		switch {
		case res.err == nil && res.status < 300:
			ok++
			if firstOK < 0 {
				firstOK = i
			}
		case res.err == nil && firstHTTPErr < 0:
			firstHTTPErr = i
		}
	}
	switch {
	case ok >= quorum:
		w.Header().Set("X-RQM-Replicas", fmt.Sprintf("%d/%d", ok, len(targets)))
		relayBuffered(w, results[firstOK])
	case ok == 0 && firstHTTPErr >= 0:
		relayBuffered(w, results[firstHTTPErr])
	default:
		rt.count(&rt.quorumFailures, 1)
		rt.writeErr(w, http.StatusBadGateway, "quorum_failed",
			"write reached %d/%d replicas, quorum is %d", ok, len(targets), quorum)
	}
}

func (rt *Router) handleGet(w http.ResponseWriter, r *http.Request) {
	rt.count(&rt.proxiedGets, 1)
	name := r.PathValue("name")
	rt.proxyRead(w, r, name, datasetPath(name))
}

func (rt *Router) handleSlice(w http.ResponseWriter, r *http.Request) {
	rt.count(&rt.proxiedSlices, 1)
	name := r.PathValue("name")
	rt.proxyRead(w, r, name, datasetPath(name)+"/slice")
}

// DeleteResponse is the router's DELETE body: how many replicas held (and
// dropped) the dataset.
type DeleteResponse struct {
	Deleted  string `json:"deleted"`
	Replicas int    `json:"replicas"`
}

// handleDelete fans out to every shard — not just the current write set —
// because sloppy placement and past topologies may have left copies
// anywhere. Success if any replica deleted; 404 only when every reachable
// shard answered 404.
func (rt *Router) handleDelete(w http.ResponseWriter, r *http.Request) {
	rt.count(&rt.proxiedDeletes, 1)
	name := r.PathValue("name")
	results := rt.fanOut(r.Context(), http.MethodDelete, rt.shards, datasetPath(name), r.URL.RawQuery, r.Header, nil)
	deleted, notFound, reachable := 0, 0, 0
	firstHTTPErr := -1
	for i, res := range results {
		if res.err != nil {
			continue
		}
		reachable++
		switch {
		case res.status < 300:
			deleted++
		case res.status == http.StatusNotFound:
			notFound++
		default:
			if firstHTTPErr < 0 {
				firstHTTPErr = i
			}
		}
	}
	switch {
	case deleted > 0:
		writeJSON(w, http.StatusOK, &DeleteResponse{Deleted: name, Replicas: deleted})
	case reachable > 0 && notFound == reachable:
		rt.writeErr(w, http.StatusNotFound, "dataset_not_found", "dataset %q not found on any replica", name)
	case firstHTTPErr >= 0:
		relayBuffered(w, results[firstHTTPErr])
	default:
		rt.writeErr(w, http.StatusBadGateway, "delete_failed", "no shard reachable for delete of %q", name)
	}
}

// handleList fans out to every healthy shard and merges by dataset name,
// keeping the newest copy of each (manifest version order: created_at,
// then generation). Unreachable shards are skipped — a partial list beats
// no list — and X-RQM-Shards-Listed reports the coverage.
func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	rt.count(&rt.proxiedLists, 1)
	var healthy []*shardState
	for _, sh := range rt.shards {
		if sh.isHealthy() {
			healthy = append(healthy, sh)
		}
	}
	if len(healthy) == 0 {
		rt.writeErr(w, http.StatusServiceUnavailable, "no_shards", "no healthy shards")
		return
	}
	results := rt.fanOut(r.Context(), http.MethodGet, healthy, "/v1/datasets", r.URL.RawQuery, r.Header, nil)
	merged := map[string]service.DatasetInfo{}
	listed := 0
	for _, res := range results {
		if res.err != nil || res.status != http.StatusOK {
			continue
		}
		var lr service.ListDatasetsResponse
		if json.Unmarshal(res.body, &lr) != nil {
			continue
		}
		listed++
		for _, d := range lr.Datasets {
			cur, ok := merged[d.Name]
			if !ok || infoNewer(&d, &cur) {
				merged[d.Name] = d
			}
		}
	}
	out := service.ListDatasetsResponse{Datasets: []service.DatasetInfo{}}
	for _, d := range merged {
		out.Datasets = append(out.Datasets, d)
	}
	sort.Slice(out.Datasets, func(i, j int) bool { return out.Datasets[i].Name < out.Datasets[j].Name })
	w.Header().Set("X-RQM-Shards-Listed", fmt.Sprintf("%d/%d", listed, len(healthy)))
	writeJSON(w, http.StatusOK, &out)
}

// infoNewer applies the same (created_at, generation) version order the
// store's CAS uses, on the list projection.
func infoNewer(a, b *service.DatasetInfo) bool {
	if !a.CreatedAt.Equal(b.CreatedAt) {
		return a.CreatedAt.After(b.CreatedAt)
	}
	return a.Generation > b.Generation
}

// handleRecompact forwards to the first replica that takes the request,
// then repairs the remaining replicas by raw-copying the rewritten
// container from the shard that served it — recompaction happens once, the
// other replicas get its bytes verbatim. X-RQM-Replicas-Synced reports how
// many repairs succeeded.
func (rt *Router) handleRecompact(w http.ResponseWriter, r *http.Request) {
	rt.count(&rt.proxiedRecompacts, 1)
	rt.forwardThenSync(w, r, "/recompact", "recompact", errBodyLimit)
}

// handlePromote / handleDemote proxy the residual-layer transitions the same
// way: the promotion (body: the original field, proven against the content
// hash shard-side) or demotion runs on one replica, and the peers receive
// the resulting generation — residual included — through the raw sync frame,
// so the lossless tier never has to be rebuilt R times.
func (rt *Router) handlePromote(w http.ResponseWriter, r *http.Request) {
	rt.count(&rt.proxiedPromotes, 1)
	rt.forwardThenSync(w, r, "/promote", "promote", rt.cfg.MaxBodyBytes)
}

func (rt *Router) handleDemote(w http.ResponseWriter, r *http.Request) {
	rt.count(&rt.proxiedDemotes, 1)
	rt.forwardThenSync(w, r, "/demote", "demote", errBodyLimit)
}

// forwardThenSync is the shared mutate-once-replicate-bytes proxy: the
// request (body buffered up to maxBody, replayable across failover) goes to
// the first healthy replica that takes it — a 404 tries the next peer, any
// other answer is final — and on success the served shard's new bytes are
// raw-synced to the remaining desired replicas. X-RQM-Replicas-Synced
// reports how many peers converged in-request.
func (rt *Router) forwardThenSync(w http.ResponseWriter, r *http.Request, subpath, verb string, maxBody int64) {
	name := r.PathValue("name")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
	if err != nil {
		rt.writeErr(w, http.StatusRequestEntityTooLarge, "body_too_large", "request body exceeds %d bytes", maxBody)
		return
	}
	healthy, _ := rt.candidates(name)
	if len(healthy) == 0 {
		rt.writeErr(w, http.StatusServiceUnavailable, "no_shards", "no healthy shards")
		return
	}
	for i, sh := range healthy {
		req, rerr := shardRequest(r.Context(), http.MethodPost, sh, datasetPath(name)+subpath, r.URL.RawQuery, r.Header, bytes.NewReader(body))
		if rerr != nil {
			rt.writeErr(w, http.StatusBadGateway, "proxy_failed", "%v", rerr)
			return
		}
		resp, derr := rt.hc.Do(req)
		if derr != nil {
			if r.Context().Err() != nil {
				rt.writeErr(w, http.StatusBadGateway, "proxy_failed", "%v", r.Context().Err())
				return
			}
			sh.markUnreachable(derr)
			rt.count(&rt.failovers, 1)
			continue
		}
		res := shardResult{sh: sh, status: resp.StatusCode, header: resp.Header}
		res.body, _ = io.ReadAll(io.LimitReader(resp.Body, errBodyLimit))
		resp.Body.Close()
		if res.status == http.StatusNotFound && i < len(healthy)-1 {
			// This replica may simply lag; let a peer try.
			continue
		}
		if res.status < 300 {
			synced := 0
			for _, peer := range rt.desiredReplicas(name) {
				if peer == sh {
					continue
				}
				if _, _, serr := rt.syncReplica(r.Context(), sh, peer, name); serr == nil {
					synced++
				}
			}
			w.Header().Set("X-RQM-Replicas-Synced", strconv.Itoa(synced))
		}
		relayBuffered(w, res)
		return
	}
	rt.writeErr(w, http.StatusBadGateway, "no_replica", "no replica could %s dataset %q", verb, name)
}

// handleNotRoutable rejects everything outside the dataset and cluster
// APIs: compute endpoints (/v1/compress, /v1/estimate, ...) are shard-local
// and carry no dataset name to place on the ring.
func (rt *Router) handleNotRoutable(w http.ResponseWriter, r *http.Request) {
	rt.writeErr(w, http.StatusNotFound, "not_routable",
		"the router serves /v1/datasets*, /v1/cluster/*, /healthz and /metrics; compute endpoints are served by shards directly")
}

// ---------------------------------------------------------------------------
// Cluster introspection

// ShardStatus is one shard's health record in /v1/cluster/status.
type ShardStatus struct {
	URL                 string    `json:"url"`
	Healthy             bool      `json:"healthy"`
	ConsecutiveFailures int       `json:"consecutive_failures"`
	Datasets            int       `json:"datasets"`
	LastError           string    `json:"last_error,omitempty"`
	LastProbe           time.Time `json:"last_probe,omitzero"`
}

// ClusterStatus is the GET /v1/cluster/status body.
type ClusterStatus struct {
	Shards     []ShardStatus `json:"shards"`
	Healthy    int           `json:"healthy"`
	Replicas   int           `json:"replicas"`
	Quorum     int           `json:"quorum"`
	VNodes     int           `json:"vnodes"`
	RingPoints int           `json:"ring_points"`
}

// Status snapshots cluster topology and shard health.
func (rt *Router) Status() ClusterStatus {
	cs := ClusterStatus{
		Replicas:   rt.cfg.Replicas,
		Quorum:     rt.Quorum(),
		VNodes:     rt.cfg.VNodes,
		RingPoints: len(rt.ring.points),
	}
	for _, sh := range rt.shards {
		st := sh.status()
		if st.Healthy {
			cs.Healthy++
		}
		cs.Shards = append(cs.Shards, st)
	}
	return cs
}

func (rt *Router) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, rt.Status())
}

// RouterHealth is the router's own /healthz body.
type RouterHealth struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Shards        int     `json:"shards"`
	Healthy       int     `json:"healthy"`
}

// handleHealthz reports router liveness plus a one-line shard summary. The
// router is degraded (but still 200 — it can serve whatever replicas
// remain) unless zero shards are healthy, which is a 503.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := rt.Status()
	h := RouterHealth{Status: "ok", UptimeSeconds: time.Since(rt.start).Seconds(), Shards: len(st.Shards), Healthy: st.Healthy}
	code := http.StatusOK
	switch {
	case st.Healthy == 0:
		h.Status = "unavailable"
		code = http.StatusServiceUnavailable
	case st.Healthy < len(st.Shards):
		h.Status = "degraded"
	}
	writeJSON(w, code, &h)
}

// Metrics is the router's /metrics snapshot.
type Metrics struct {
	UptimeSeconds       float64 `json:"uptime_seconds"`
	Requests            int64   `json:"requests"`
	Errors              int64   `json:"errors"`
	ProxiedPuts         int64   `json:"proxied_puts"`
	ProxiedGets         int64   `json:"proxied_gets"`
	ProxiedLists        int64   `json:"proxied_lists"`
	ProxiedDeletes      int64   `json:"proxied_deletes"`
	ProxiedSlices       int64   `json:"proxied_slices"`
	ProxiedRecompacts   int64   `json:"proxied_recompacts"`
	ProxiedPromotes     int64   `json:"proxied_promotes"`
	ProxiedDemotes      int64   `json:"proxied_demotes"`
	Failovers           int64   `json:"failovers"`
	ReadRepairs         int64   `json:"read_repairs"`
	ReadRepairFailures  int64   `json:"read_repair_failures"`
	QuorumFailures      int64   `json:"quorum_failures"`
	ReplicaSyncs        int64   `json:"replica_syncs"`
	ReplicaSyncFailures int64   `json:"replica_sync_failures"`
	Rebalances          int64   `json:"rebalances"`
	RebalanceCopied     int64   `json:"rebalance_copied"`
	RebalanceRemoved    int64   `json:"rebalance_removed"`
	RebalanceBytesMoved int64   `json:"rebalance_bytes_moved"`
	Probes              int64   `json:"probes"`
	ProbeFailures       int64   `json:"probe_failures"`
	ShardsTotal         int     `json:"shards_total"`
	ShardsHealthy       int     `json:"shards_healthy"`
}

// Snapshot takes the write side of snapMu so the counters form one
// consistent cut (no torn reads against concurrent increments).
func (rt *Router) Snapshot() Metrics {
	rt.snapMu.Lock()
	m := Metrics{
		UptimeSeconds:       time.Since(rt.start).Seconds(),
		Requests:            rt.requests.Load(),
		Errors:              rt.errors.Load(),
		ProxiedPuts:         rt.proxiedPuts.Load(),
		ProxiedGets:         rt.proxiedGets.Load(),
		ProxiedLists:        rt.proxiedLists.Load(),
		ProxiedDeletes:      rt.proxiedDeletes.Load(),
		ProxiedSlices:       rt.proxiedSlices.Load(),
		ProxiedRecompacts:   rt.proxiedRecompacts.Load(),
		ProxiedPromotes:     rt.proxiedPromotes.Load(),
		ProxiedDemotes:      rt.proxiedDemotes.Load(),
		Failovers:           rt.failovers.Load(),
		ReadRepairs:         rt.readRepairs.Load(),
		ReadRepairFailures:  rt.readRepairFailures.Load(),
		QuorumFailures:      rt.quorumFailures.Load(),
		ReplicaSyncs:        rt.replicaSyncs.Load(),
		ReplicaSyncFailures: rt.replicaSyncFailures.Load(),
		Rebalances:          rt.rebalances.Load(),
		RebalanceCopied:     rt.rebalanceCopied.Load(),
		RebalanceRemoved:    rt.rebalanceRemoved.Load(),
		RebalanceBytesMoved: rt.rebalanceBytes.Load(),
		Probes:              rt.probes.Load(),
		ProbeFailures:       rt.probeFailures.Load(),
		ShardsTotal:         len(rt.shards),
	}
	rt.snapMu.Unlock()
	for _, sh := range rt.shards {
		if sh.isHealthy() {
			m.ShardsHealthy++
		}
	}
	return m
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Cache-Control", "no-store")
	writeJSON(w, http.StatusOK, rt.Snapshot())
}

func (rt *Router) handleRebalance(w http.ResponseWriter, r *http.Request) {
	rep, err := rt.Rebalance(r.Context())
	if err != nil {
		rt.writeErr(w, http.StatusServiceUnavailable, "rebalance_failed", "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}
