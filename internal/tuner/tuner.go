// Package tuner implements the paper's three use-cases on top of the
// ratio-quality model (§IV): best-fit predictor selection, memory
// compression with a target footprint, and in-situ per-partition error-bound
// optimization — plus the trial-and-error baselines the paper compares
// against (the "traditional" offline approach and the in-situ TAE approach).
//
// Every use-case operates on the codec.Codec interface, so it works
// identically for any registered backend: profiles come from Codec.Profile,
// compression runs go through codec.Compress, and cross-backend selection
// (SelectCodec) ranks all registered codecs at a quality target with one
// call.
package tuner

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"rqm/internal/codec"
	"rqm/internal/compressor"
	"rqm/internal/core"
	"rqm/internal/grid"
	"rqm/internal/predictor"
	"rqm/internal/quality"
)

// Choice records one predictor's modeled performance at the probe point.
type Choice struct {
	// Kind is the candidate predictor.
	Kind predictor.Kind
	// Profile is its sampling profile (reusable for later estimates).
	Profile *core.Profile
	// Estimate is the model output at the probed error bound.
	Estimate core.Estimate
}

// SelectPredictor profiles each candidate once and returns the predictor
// with the best modeled trade-off at the given absolute error bound: the
// one with the highest estimated PSNR per bit, which reduces to the lowest
// bit-rate when quality estimates tie (use-case §IV-A). All candidates'
// choices are returned for inspection, best first.
func SelectPredictor(f *grid.Field, kinds []predictor.Kind, absEB float64, opts core.Options) ([]Choice, error) {
	if len(kinds) == 0 {
		return nil, errors.New("tuner: no candidate predictors")
	}
	c, err := codec.ByID(codec.IDPrediction)
	if err != nil {
		return nil, err
	}
	choices := make([]Choice, 0, len(kinds))
	for _, k := range kinds {
		p, err := c.Profile(f, codec.Options{Predictor: k}, opts)
		if err != nil {
			return nil, fmt.Errorf("tuner: profiling %s: %w", k, err)
		}
		choices = append(choices, Choice{Kind: k, Profile: p, Estimate: p.EstimateAt(absEB)})
	}
	// Order by modeled quality-per-bit: primary key PSNR at equal rate is
	// not directly comparable across predictors (same eb ⇒ same PSNR model
	// up to central-bin effects), so the paper ranks by rate at the bound
	// and by quality where rates tie.
	sortChoices(choices)
	return choices, nil
}

func sortChoices(cs []Choice) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && better(cs[j], cs[j-1]); j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

func better(a, b Choice) bool {
	if math.Abs(a.Estimate.TotalBitRate-b.Estimate.TotalBitRate) > 1e-9 {
		return a.Estimate.TotalBitRate < b.Estimate.TotalBitRate
	}
	return a.Estimate.PSNR > b.Estimate.PSNR
}

// RatePoint is one sample of a modeled rate-distortion curve.
type RatePoint struct {
	// AbsErrorBound is the bound used.
	AbsErrorBound float64
	// BitRate is the modeled total bits/value.
	BitRate float64
	// PSNR is the modeled quality.
	PSNR float64
}

// RateDistortion evaluates a profile across a log-spaced sweep of error
// bounds (relative to the value range), from relLo to relHi inclusive.
func RateDistortion(p *core.Profile, relLo, relHi float64, points int) []RatePoint {
	if points < 2 {
		points = 2
	}
	out := make([]RatePoint, points)
	for i := 0; i < points; i++ {
		t := float64(i) / float64(points-1)
		rel := relLo * math.Pow(relHi/relLo, t)
		eb := rel * p.Range
		est := p.EstimateAt(eb)
		out[i] = RatePoint{AbsErrorBound: eb, BitRate: est.TotalBitRate, PSNR: est.PSNR}
	}
	return out
}

// SwitchPoint locates the bit-rate below which candidate b's modeled PSNR
// exceeds candidate a's (the paper's Fig. 10 predictor switch, ≈1.89 bits
// for RTM). Both profiles are swept over the same bit-rate grid; the
// crossover is interpolated. ok is false when one candidate dominates
// everywhere.
func SwitchPoint(a, b *core.Profile, bitLo, bitHi float64, points int) (bitRate float64, ok bool) {
	if points < 8 {
		points = 8
	}
	prevDelta := math.NaN()
	prevBits := 0.0
	for i := 0; i < points; i++ {
		t := float64(i) / float64(points-1)
		bits := bitLo * math.Pow(bitHi/bitLo, t)
		ea, errA := a.ErrorBoundForBitRate(bits)
		eb, errB := b.ErrorBoundForBitRate(bits)
		if errA != nil || errB != nil {
			continue
		}
		delta := b.EstimateAt(eb).PSNR - a.EstimateAt(ea).PSNR
		if !math.IsNaN(prevDelta) && (delta >= 0) != (prevDelta >= 0) {
			// Linear interpolation of the crossing in bit-rate.
			frac := prevDelta / (prevDelta - delta)
			return prevBits + frac*(bits-prevBits), true
		}
		prevDelta, prevBits = delta, bits
	}
	return 0, false
}

// MemoryPlan is the outcome of a budgeted compression (use-case §IV-B).
type MemoryPlan struct {
	// BudgetBytes is the assigned space.
	BudgetBytes int64
	// TargetBitRate is the planned bits/value after headroom.
	TargetBitRate float64
	// ErrorBound is the solved absolute bound.
	ErrorBound float64
	// Rounds counts compression attempts (1 unless the strict path had to
	// re-compress).
	Rounds int
	// Overflowed reports whether the final output still exceeds the budget
	// (possible only in non-strict mode).
	Overflowed bool
	// Result is the final sealed compression output.
	Result *codec.Result
}

// CompressToBudget compresses f with codec c so its sealed container fits
// budgetBytes. Following the paper, the plan targets a bit-rate `headroom`
// (default 0.2) below the budget to absorb model error; in strict mode, rare
// overflows trigger re-compression with a tightened target until the output
// fits (or rounds run out, which returns an error). The profile p must come
// from the same codec (c.Profile).
func CompressToBudget(f *grid.Field, p *core.Profile, c codec.Codec,
	budgetBytes int64, headroom float64, strict bool, copts codec.Options) (*MemoryPlan, error) {
	if budgetBytes <= 0 {
		return nil, errors.New("tuner: budget must be positive")
	}
	if headroom <= 0 || headroom >= 1 {
		headroom = 0.2
	}
	plan := &MemoryPlan{BudgetBytes: budgetBytes}
	target := float64(budgetBytes) * 8 / float64(f.Len()) * (1 - headroom)
	const maxRounds = 5
	for round := 1; round <= maxRounds; round++ {
		plan.Rounds = round
		plan.TargetBitRate = target
		eb, err := p.ErrorBoundForRatio(float64(p.OrigBits) / target)
		if err != nil {
			return nil, err
		}
		plan.ErrorBound = eb
		copts.Mode = compressor.ABS
		copts.ErrorBound = eb
		res, err := codec.Compress(c, f, copts)
		if err != nil {
			return nil, err
		}
		plan.Result = res
		if res.Stats.CompressedBytes <= budgetBytes {
			plan.Overflowed = false
			return plan, nil
		}
		plan.Overflowed = true
		if !strict {
			return plan, nil
		}
		// Tighten proportionally to the observed overshoot.
		target *= float64(budgetBytes) / float64(res.Stats.CompressedBytes) * 0.95
	}
	return plan, fmt.Errorf("tuner: could not fit %d bytes after %d rounds", budgetBytes, plan.Rounds)
}

// PartitionAllocation is the per-partition outcome of in-situ optimization.
type PartitionAllocation struct {
	// ErrorBound is the absolute bound assigned to the partition.
	ErrorBound float64
	// Estimate is the model output at that bound.
	Estimate core.Estimate
}

// aggregate computes size-weighted mean error variance and mean bit-rate.
func aggregate(profiles []*core.Profile, allocs []PartitionAllocation) (errVar, bits float64) {
	var n float64
	for i, p := range profiles {
		w := float64(p.N)
		errVar += w * allocs[i].Estimate.ErrVar
		bits += w * allocs[i].Estimate.TotalBitRate
		n += w
	}
	return errVar / n, bits / n
}

// ebGrid builds the per-partition candidate error bounds (log-spaced).
func ebGrid(p *core.Profile, points int) []float64 {
	lo := p.BaseErrorBound()
	hi := p.Range
	if hi <= lo {
		hi = lo * 10
	}
	out := make([]float64, points)
	for i := range out {
		t := float64(i) / float64(points-1)
		out[i] = lo * math.Pow(hi/lo, t)
	}
	return out
}

// OptimizePartitionsForPSNR assigns each partition an error bound so the
// size-weighted aggregate PSNR meets target while minimizing total bits
// (use-case §IV-C). It solves the separable Lagrangian min Σ w(B + λσ²) and
// bisects λ until the aggregate error variance matches the target variance.
func OptimizePartitionsForPSNR(profiles []*core.Profile, targetPSNR float64) ([]PartitionAllocation, error) {
	if len(profiles) == 0 {
		return nil, errors.New("tuner: no partitions")
	}
	// The PSNR of the concatenated data uses the global range; aggregate MSE
	// must satisfy range²/MSE >= 10^(PSNR/10).
	globalRange := 0.0
	for _, p := range profiles {
		if p.Range > globalRange {
			globalRange = p.Range
		}
	}
	if globalRange <= 0 {
		return nil, errors.New("tuner: degenerate partitions")
	}
	targetVar := globalRange * globalRange / math.Pow(10, targetPSNR/10)

	const gridPts = 160
	grids := make([][]float64, len(profiles))
	ests := make([][]core.Estimate, len(profiles))
	for i, p := range profiles {
		grids[i] = ebGrid(p, gridPts)
		ests[i] = p.Curve(grids[i])
	}
	idxs := make([]int, len(profiles))
	allocFor := func(lambda float64) []int {
		out := make([]int, len(profiles))
		for i := range profiles {
			bestCost := math.Inf(1)
			for j, est := range ests[i] {
				cost := est.TotalBitRate + lambda*est.ErrVar
				if cost < bestCost {
					bestCost = cost
					out[i] = j
				}
			}
		}
		return out
	}
	varOf := func(sel []int) float64 {
		var v, n float64
		for i, p := range profiles {
			v += float64(p.N) * ests[i][sel[i]].ErrVar
			n += float64(p.N)
		}
		return v / n
	}
	// Bisect λ: larger λ penalizes error variance more → lower aggregate
	// variance. Find the smallest λ meeting the target.
	loL, hiL := 0.0, 1.0
	for iter := 0; iter < 60; iter++ {
		if varOf(allocFor(hiL)) <= targetVar {
			break
		}
		hiL *= 8
	}
	if idxs = allocFor(hiL); varOf(idxs) > targetVar {
		// Even the tightest grid cannot reach the target: return tightest.
		return materialize(grids, ests, idxs), nil
	}
	for iter := 0; iter < 60; iter++ {
		mid := (loL + hiL) / 2
		if varOf(allocFor(mid)) <= targetVar {
			hiL = mid
		} else {
			loL = mid
		}
	}
	idxs = allocFor(hiL)
	// Greedy polish: spend any remaining variance slack by loosening the
	// partition with the best bits-saved-per-variance-added step, undoing
	// the grid quantization of the Lagrangian.
	for pass := 0; pass < gridPts*len(profiles); pass++ {
		best := -1
		bestGain := 0.0
		cur := varOf(idxs)
		for i := range profiles {
			j := idxs[i]
			if j+1 >= gridPts {
				continue
			}
			dv := float64(profiles[i].N) * (ests[i][j+1].ErrVar - ests[i][j].ErrVar)
			var n float64
			for _, p := range profiles {
				n += float64(p.N)
			}
			if cur+dv/n > targetVar {
				continue
			}
			gain := ests[i][j].TotalBitRate - ests[i][j+1].TotalBitRate
			if gain > bestGain {
				bestGain = gain
				best = i
			}
		}
		if best < 0 {
			break
		}
		idxs[best]++
	}
	return materialize(grids, ests, idxs), nil
}

// materialize converts grid indices into PartitionAllocations.
func materialize(grids [][]float64, ests [][]core.Estimate, idxs []int) []PartitionAllocation {
	out := make([]PartitionAllocation, len(idxs))
	for i, j := range idxs {
		out[i] = PartitionAllocation{ErrorBound: grids[i][j], Estimate: ests[i][j]}
	}
	return out
}

// OptimizePartitionsForBitRate is the dual problem: meet an aggregate
// bit-rate budget while minimizing the aggregate error variance (maximizing
// quality).
func OptimizePartitionsForBitRate(profiles []*core.Profile, targetBits float64) ([]PartitionAllocation, error) {
	if len(profiles) == 0 {
		return nil, errors.New("tuner: no partitions")
	}
	const gridPts = 48
	grids := make([][]float64, len(profiles))
	ests := make([][]core.Estimate, len(profiles))
	for i, p := range profiles {
		grids[i] = ebGrid(p, gridPts)
		ests[i] = p.Curve(grids[i])
	}
	allocFor := func(mu float64) []PartitionAllocation {
		out := make([]PartitionAllocation, len(profiles))
		for i := range profiles {
			bestCost := math.Inf(1)
			for j, est := range ests[i] {
				cost := est.ErrVar + mu*est.TotalBitRate
				if cost < bestCost {
					bestCost = cost
					out[i] = PartitionAllocation{ErrorBound: grids[i][j], Estimate: est}
				}
			}
		}
		return out
	}
	// Larger μ penalizes bits more → lower aggregate bit-rate.
	loM, hiM := 0.0, 1.0
	for iter := 0; iter < 60; iter++ {
		if _, b := aggregate(profiles, allocFor(hiM)); b <= targetBits {
			break
		}
		hiM *= 8
	}
	if _, b := aggregate(profiles, allocFor(hiM)); b > targetBits {
		return allocFor(hiM), nil
	}
	for iter := 0; iter < 60; iter++ {
		mid := (loM + hiM) / 2
		if _, b := aggregate(profiles, allocFor(mid)); b <= targetBits {
			hiM = mid
		} else {
			loM = mid
		}
	}
	return allocFor(hiM), nil
}

// AggregateOf exposes the size-weighted aggregate error variance and
// bit-rate of an allocation (for experiments).
func AggregateOf(profiles []*core.Profile, allocs []PartitionAllocation) (errVar, bits float64) {
	return aggregate(profiles, allocs)
}

// TAEOutcome reports a trial-and-error baseline run.
type TAEOutcome struct {
	// ErrorBound is the selected bound.
	ErrorBound float64
	// Trials is the number of full compress(+decompress+analyze) runs.
	Trials int
	// Elapsed is the total optimization wall time.
	Elapsed time.Duration
	// PSNR is the measured quality at the selected bound (NaN if the
	// criterion was ratio-only).
	PSNR float64
}

// TAESelectErrorBound is the paper's baseline: compress, decompress, and
// measure each candidate bound with codec c, then pick the largest bound
// whose measured PSNR still meets the target. Every candidate costs a full
// pipeline run.
func TAESelectErrorBound(f *grid.Field, c codec.Codec, copts codec.Options,
	candidates []float64, targetPSNR float64) (*TAEOutcome, error) {
	if len(candidates) == 0 {
		return nil, errors.New("tuner: no candidate bounds")
	}
	start := time.Now()
	out := &TAEOutcome{ErrorBound: math.NaN(), PSNR: math.NaN()}
	for _, eb := range candidates {
		out.Trials++
		copts.Mode = compressor.ABS
		copts.ErrorBound = eb
		res, err := codec.Compress(c, f, copts)
		if err != nil {
			return nil, err
		}
		dec, err := codec.Decompress(res.Bytes)
		if err != nil {
			return nil, err
		}
		psnr, err := quality.PSNR(f, dec)
		if err != nil {
			return nil, err
		}
		if psnr >= targetPSNR && (math.IsNaN(out.ErrorBound) || eb > out.ErrorBound) {
			out.ErrorBound = eb
			out.PSNR = psnr
		}
	}
	out.Elapsed = time.Since(start)
	if math.IsNaN(out.ErrorBound) {
		return out, errors.New("tuner: no candidate met the PSNR target")
	}
	return out, nil
}

// TAESelectPredictor compresses with every candidate at the given bound and
// returns the predictor with the best measured ratio, with full-run cost.
func TAESelectPredictor(f *grid.Field, kinds []predictor.Kind, absEB float64) (predictor.Kind, *TAEOutcome, error) {
	if len(kinds) == 0 {
		return 0, nil, errors.New("tuner: no candidate predictors")
	}
	c, err := codec.ByID(codec.IDPrediction)
	if err != nil {
		return 0, nil, err
	}
	start := time.Now()
	best := kinds[0]
	bestRatio := -1.0
	out := &TAEOutcome{ErrorBound: absEB, PSNR: math.NaN()}
	for _, k := range kinds {
		out.Trials++
		res, err := codec.Compress(c, f, codec.Options{
			Predictor: k, Mode: compressor.ABS, ErrorBound: absEB,
		})
		if err != nil {
			return 0, nil, err
		}
		if res.Stats.Ratio > bestRatio {
			bestRatio = res.Stats.Ratio
			best = k
		}
	}
	out.Elapsed = time.Since(start)
	return best, out, nil
}

// CodecChoice records one codec's modeled performance at a quality target.
type CodecChoice struct {
	// Codec is the candidate backend.
	Codec codec.Codec
	// Profile is its sampling profile (reusable for later estimates).
	Profile *core.Profile
	// ErrorBound is the solved absolute bound meeting the target.
	ErrorBound float64
	// Estimate is the model output at that bound.
	Estimate core.Estimate
}

// SelectCodec ranks codecs by modeled compression at a PSNR target: each
// candidate is profiled once, the bound meeting the target is solved on its
// profile, and candidates are ordered by modeled bit-rate at that bound
// (best ratio first). Candidates that cannot profile the field or reach the
// target are skipped; an error is returned only when none qualifies. This is
// the cross-backend auto-selection the compressor-agnostic model enables:
// one sampling pass per codec, no trial compression.
func SelectCodec(f *grid.Field, codecs []codec.Codec, targetPSNR float64,
	copts codec.Options, mopts core.Options) ([]CodecChoice, error) {
	if len(codecs) == 0 {
		return nil, errors.New("tuner: no candidate codecs")
	}
	var choices []CodecChoice
	var lastErr error
	for _, c := range codecs {
		p, err := c.Profile(f, copts, mopts)
		if err != nil {
			lastErr = fmt.Errorf("tuner: profiling codec %s: %w", c.Name(), err)
			continue
		}
		eb, err := p.ErrorBoundForPSNR(targetPSNR)
		if err != nil {
			lastErr = fmt.Errorf("tuner: codec %s cannot reach %.1f dB: %w", c.Name(), targetPSNR, err)
			continue
		}
		choices = append(choices, CodecChoice{
			Codec: c, Profile: p, ErrorBound: eb, Estimate: p.EstimateAt(eb),
		})
	}
	if len(choices) == 0 {
		if lastErr == nil {
			lastErr = errors.New("tuner: no codec qualified")
		}
		return nil, lastErr
	}
	sort.SliceStable(choices, func(i, j int) bool {
		return choices[i].Estimate.TotalBitRate < choices[j].Estimate.TotalBitRate
	})
	return choices, nil
}
