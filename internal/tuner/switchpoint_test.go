package tuner

import (
	"math"
	"testing"

	"rqm/internal/core"
	"rqm/internal/predictor"
)

// syntheticProfile builds a profile whose prediction-error distribution is
// a two-sided exponential with the given scale; smaller scales model better
// predictors.
func syntheticProfile(t *testing.T, kind predictor.Kind, scale float64, n int) *core.Profile {
	t.Helper()
	samples := make([]float64, n)
	for i := range samples {
		// Deterministic inverse-CDF sampling of Laplace(scale).
		u := (float64(i) + 0.5) / float64(n)
		sign := 1.0
		if i%2 == 1 {
			sign = -1
		}
		samples[i] = sign * (-scale * math.Log(1-u))
	}
	p, err := core.NewProfileFromSamples(kind, samples, []int{n}, n*100, 32, 100, 50, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestSwitchPointOnCraftedCrossover: two Laplace profiles with different
// scales have strictly ordered rate-distortion curves (no crossover), so
// SwitchPoint must report ok=false; a crossover case is exercised on real
// data elsewhere.
func TestSwitchPointNoCrossover(t *testing.T) {
	better := syntheticProfile(t, predictor.Lorenzo, 0.01, 4000)
	worse := syntheticProfile(t, predictor.Interpolation, 1.0, 4000)
	if bits, ok := SwitchPoint(better, worse, 0.5, 12, 24); ok {
		// If a crossover is reported it must at least be inside the sweep.
		if bits < 0.5 || bits > 12 {
			t.Fatalf("reported switch point %v outside sweep", bits)
		}
	}
}

// TestRateDistortionDefensiveArgs verifies degenerate argument handling.
func TestRateDistortionDefensiveArgs(t *testing.T) {
	p := syntheticProfile(t, predictor.Lorenzo, 0.1, 1000)
	pts := RateDistortion(p, 1e-4, 1e-2, 1) // below minimum points
	if len(pts) != 2 {
		t.Fatalf("points = %d, want clamped minimum 2", len(pts))
	}
	if !(pts[0].AbsErrorBound < pts[1].AbsErrorBound) {
		t.Fatal("sweep not increasing")
	}
}

// TestChoiceOrderingTransitivity guards the insertion sort in
// SelectPredictor against inconsistent comparators.
func TestChoiceOrderingTransitivity(t *testing.T) {
	mk := func(bits, psnr float64) Choice {
		return Choice{Estimate: core.Estimate{TotalBitRate: bits, PSNR: psnr}}
	}
	cs := []Choice{mk(3, 50), mk(1, 40), mk(2, 60), mk(1, 55)}
	sortChoices(cs)
	for i := 1; i < len(cs); i++ {
		if cs[i].Estimate.TotalBitRate < cs[i-1].Estimate.TotalBitRate-1e-9 {
			t.Fatalf("not sorted by bit-rate at %d", i)
		}
		if cs[i].Estimate.TotalBitRate == cs[i-1].Estimate.TotalBitRate &&
			cs[i].Estimate.PSNR > cs[i-1].Estimate.PSNR {
			t.Fatalf("tie not broken by PSNR at %d", i)
		}
	}
}

// TestCompressToBudgetNonStrictReportsOverflow forces a budget the model
// cannot plan reliably and checks non-strict mode reports rather than
// loops.
func TestCompressToBudgetNonStrictReportsOverflow(t *testing.T) {
	f := fieldForBudget(t)
	p, err := core.NewProfile(f, predictor.Lorenzo, core.Options{SampleRate: 0.3, UseLossless: true})
	if err != nil {
		t.Fatal(err)
	}
	// An absurdly tight budget: headroom cannot save it, but the call must
	// return with Overflowed set (or a fitting result) in one round.
	plan, err := CompressToBudget(f, p, predCodec(t), 600, 0.2, false, codecOptions())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Rounds != 1 {
		t.Fatalf("non-strict mode ran %d rounds", plan.Rounds)
	}
	if plan.Overflowed && plan.Result.Stats.CompressedBytes <= plan.BudgetBytes {
		t.Fatal("overflow flag inconsistent with result size")
	}
}
