package tuner

import (
	"math"
	"testing"

	"rqm/internal/codec"
	"rqm/internal/compressor"
	"rqm/internal/core"
	"rqm/internal/datagen"
	"rqm/internal/grid"
	"rqm/internal/predictor"
	"rqm/internal/quality"
)

var modelOpts = core.Options{SampleRate: 0.2, Seed: 3, UseLossless: true}

func predCodec(t testing.TB) codec.Codec {
	t.Helper()
	c, err := codec.ByID(codec.IDPrediction)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func field(t testing.TB, name string) *grid.Field {
	t.Helper()
	f, err := datagen.GenerateField(name, 42, datagen.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestSelectPredictorRanksByModel(t *testing.T) {
	f := field(t, "cesm/TS")
	kinds := []predictor.Kind{predictor.Lorenzo, predictor.Interpolation, predictor.Regression}
	lo, hi := f.ValueRange()
	choices, err := SelectPredictor(f, kinds, (hi-lo)*1e-3, modelOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(choices) != 3 {
		t.Fatalf("choices = %d", len(choices))
	}
	for i := 1; i < len(choices); i++ {
		if choices[i].Estimate.TotalBitRate < choices[i-1].Estimate.TotalBitRate-1e-9 {
			t.Fatal("choices not sorted by modeled bit-rate")
		}
	}
	// The model's winner should be at worst second-best in measured ratio.
	measured := map[predictor.Kind]float64{}
	for _, k := range kinds {
		res, err := compressor.Compress(f, compressor.Options{Predictor: k, Mode: compressor.ABS, ErrorBound: (hi - lo) * 1e-3})
		if err != nil {
			t.Fatal(err)
		}
		measured[k] = res.Stats.Ratio
	}
	bestMeasured := kinds[0]
	for _, k := range kinds[1:] {
		if measured[k] > measured[bestMeasured] {
			bestMeasured = k
		}
	}
	rankOfWinner := -1
	for i, c := range choices {
		if c.Kind == bestMeasured {
			rankOfWinner = i
			break
		}
	}
	if rankOfWinner > 1 {
		t.Errorf("measured best %s ranked %d by the model (choices: %+v, measured: %v)",
			bestMeasured, rankOfWinner, choices, measured)
	}
}

func TestSelectPredictorEmpty(t *testing.T) {
	f := field(t, "cesm/TS")
	if _, err := SelectPredictor(f, nil, 1e-3, modelOpts); err == nil {
		t.Fatal("empty candidates accepted")
	}
}

func TestRateDistortionMonotone(t *testing.T) {
	f := field(t, "miranda/vx")
	p, err := core.NewProfile(f, predictor.Interpolation, modelOpts)
	if err != nil {
		t.Fatal(err)
	}
	pts := RateDistortion(p, 1e-6, 1e-1, 12)
	if len(pts) != 12 {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].AbsErrorBound <= pts[i-1].AbsErrorBound {
			t.Fatal("bounds not increasing")
		}
		if pts[i].BitRate > pts[i-1].BitRate+1e-9 {
			t.Fatal("bit-rate not decreasing along sweep")
		}
	}
}

func TestCompressToBudgetFits(t *testing.T) {
	f := field(t, "hurricane/U")
	p, err := core.NewProfile(f, predictor.Lorenzo, modelOpts)
	if err != nil {
		t.Fatal(err)
	}
	budget := f.OriginalBytes() / 8 // demand 8x reduction
	plan, err := CompressToBudget(f, p, predCodec(t), budget, 0.2, true,
		codec.Options{Predictor: predictor.Lorenzo})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Result.Stats.CompressedBytes > budget {
		t.Fatalf("strict plan overflowed: %d > %d", plan.Result.Stats.CompressedBytes, budget)
	}
	if plan.TargetBitRate <= 0 || plan.ErrorBound <= 0 {
		t.Fatalf("plan fields: %+v", plan)
	}
	// Verify the error bound still holds end to end (routed decompression).
	dec, err := codec.Decompress(plan.Result.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	if err := compressor.VerifyErrorBound(f, dec, compressor.ABS, plan.ErrorBound); err != nil {
		t.Fatal(err)
	}
}

func TestCompressToBudgetValidation(t *testing.T) {
	f := field(t, "hurricane/U")
	p, err := core.NewProfile(f, predictor.Lorenzo, modelOpts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompressToBudget(f, p, predCodec(t), 0, 0.2, true,
		codec.Options{Predictor: predictor.Lorenzo}); err == nil {
		t.Fatal("zero budget accepted")
	}
}

func TestOptimizePartitionsForPSNRMeetsTarget(t *testing.T) {
	snaps, err := datagen.Generate("rtm", 9, datagen.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	var profiles []*core.Profile
	for _, f := range snaps.Fields {
		p, err := core.NewProfile(f, predictor.Interpolation, modelOpts)
		if err != nil {
			t.Fatal(err)
		}
		profiles = append(profiles, p)
	}
	const target = 60.0
	allocs, err := OptimizePartitionsForPSNR(profiles, target)
	if err != nil {
		t.Fatal(err)
	}
	if len(allocs) != len(profiles) {
		t.Fatalf("allocs = %d", len(allocs))
	}
	errVar, bits := AggregateOf(profiles, allocs)
	globalRange := 0.0
	for _, p := range profiles {
		if p.Range > globalRange {
			globalRange = p.Range
		}
	}
	aggPSNR := 20*math.Log10(globalRange) - 10*math.Log10(errVar)
	if aggPSNR < target-0.5 {
		t.Fatalf("aggregate PSNR %.2f below target %v", aggPSNR, target)
	}
	// Non-uniform allocation should beat the uniform-eb baseline: find the
	// single eb meeting the same target and compare total bits.
	uniformBits := uniformBaselineBits(t, profiles, target, globalRange)
	if bits > uniformBits*1.05 {
		t.Errorf("optimized bits %.3f worse than uniform baseline %.3f", bits, uniformBits)
	}
}

// uniformBaselineBits finds one shared error bound meeting the aggregate
// PSNR target (bisection over the shared bound) and returns aggregate bits.
func uniformBaselineBits(t *testing.T, profiles []*core.Profile, target, globalRange float64) float64 {
	t.Helper()
	targetVar := globalRange * globalRange / math.Pow(10, target/10)
	lo, hi := 1e-12*globalRange, globalRange
	for i := 0; i < 60; i++ {
		mid := math.Sqrt(lo * hi)
		var v, n float64
		for _, p := range profiles {
			v += float64(p.N) * p.EstimateAt(mid).ErrVar
			n += float64(p.N)
		}
		if v/n <= targetVar {
			lo = mid
		} else {
			hi = mid
		}
	}
	var bits, n float64
	for _, p := range profiles {
		bits += float64(p.N) * p.EstimateAt(lo).TotalBitRate
		n += float64(p.N)
	}
	return bits / n
}

func TestOptimizePartitionsForBitRate(t *testing.T) {
	snaps, err := datagen.Generate("rtm", 9, datagen.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	var profiles []*core.Profile
	for _, f := range snaps.Fields {
		p, err := core.NewProfile(f, predictor.Interpolation, modelOpts)
		if err != nil {
			t.Fatal(err)
		}
		profiles = append(profiles, p)
	}
	const targetBits = 4.0
	allocs, err := OptimizePartitionsForBitRate(profiles, targetBits)
	if err != nil {
		t.Fatal(err)
	}
	_, bits := AggregateOf(profiles, allocs)
	if bits > targetBits*1.1 {
		t.Fatalf("aggregate bits %.3f exceed target %v", bits, targetBits)
	}
}

func TestOptimizeEmptyPartitions(t *testing.T) {
	if _, err := OptimizePartitionsForPSNR(nil, 60); err == nil {
		t.Fatal("empty partitions accepted")
	}
	if _, err := OptimizePartitionsForBitRate(nil, 4); err == nil {
		t.Fatal("empty partitions accepted")
	}
}

func TestTAESelectErrorBound(t *testing.T) {
	f := field(t, "nyx/temperature")
	lo, hi := f.ValueRange()
	rng := hi - lo
	candidates := []float64{rng * 1e-5, rng * 1e-4, rng * 1e-3, rng * 1e-2}
	out, err := TAESelectErrorBound(f, predCodec(t), codec.Options{Predictor: predictor.Lorenzo}, candidates, 60)
	if err != nil {
		t.Fatal(err)
	}
	if out.Trials != len(candidates) {
		t.Fatalf("trials = %d", out.Trials)
	}
	if math.IsNaN(out.ErrorBound) || out.PSNR < 60 {
		t.Fatalf("selected eb=%v psnr=%v", out.ErrorBound, out.PSNR)
	}
	// The TAE pick must be the largest candidate meeting the target: verify
	// the next larger candidate fails it.
	idx := -1
	for i, c := range candidates {
		if c == out.ErrorBound {
			idx = i
		}
	}
	if idx < 0 {
		t.Fatal("selected bound not among candidates")
	}
	if idx+1 < len(candidates) {
		res, _ := compressor.Compress(f, compressor.Options{Predictor: predictor.Lorenzo, Mode: compressor.ABS, ErrorBound: candidates[idx+1]})
		dec, _ := compressor.Decompress(res.Bytes)
		psnr, _ := quality.PSNR(f, dec)
		if psnr >= 60 {
			t.Fatalf("TAE under-selected: candidate %v also meets target (%.2f dB)", candidates[idx+1], psnr)
		}
	}
}

func TestTAESelectErrorBoundNoCandidateMeets(t *testing.T) {
	f := field(t, "nyx/temperature")
	lo, hi := f.ValueRange()
	if _, err := TAESelectErrorBound(f, predCodec(t), codec.Options{Predictor: predictor.Lorenzo},
		[]float64{(hi - lo) * 0.5}, 200); err == nil {
		t.Fatal("unreachable target accepted")
	}
}

func TestTAESelectPredictor(t *testing.T) {
	f := field(t, "cesm/TS")
	lo, hi := f.ValueRange()
	kinds := []predictor.Kind{predictor.Lorenzo, predictor.Interpolation}
	best, out, err := TAESelectPredictor(f, kinds, (hi-lo)*1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if out.Trials != 2 {
		t.Fatalf("trials = %d", out.Trials)
	}
	found := false
	for _, k := range kinds {
		if k == best {
			found = true
		}
	}
	if !found {
		t.Fatalf("best = %v not among candidates", best)
	}
}

func TestSelectCodecRanksAllRegisteredBackends(t *testing.T) {
	f := field(t, "nyx/temperature")
	choices, err := SelectCodec(f, codec.All(), 60, codec.Options{Predictor: predictor.Lorenzo}, modelOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(choices) != len(codec.All()) {
		t.Fatalf("choices = %d, registered codecs = %d", len(choices), len(codec.All()))
	}
	for i, c := range choices {
		if c.ErrorBound <= 0 || c.Estimate.TotalBitRate <= 0 {
			t.Fatalf("choice %d (%s): eb=%v bits=%v", i, c.Codec.Name(), c.ErrorBound, c.Estimate.TotalBitRate)
		}
		if i > 0 && c.Estimate.TotalBitRate < choices[i-1].Estimate.TotalBitRate-1e-9 {
			t.Fatal("choices not sorted by modeled bit-rate")
		}
		// The winner must actually deliver a working round trip at its bound.
		res, err := codec.Compress(c.Codec, f, codec.Options{
			Predictor: predictor.Lorenzo, Mode: compressor.ABS, ErrorBound: c.ErrorBound,
		})
		if err != nil {
			t.Fatal(err)
		}
		dec, err := codec.Decompress(res.Bytes)
		if err != nil {
			t.Fatal(err)
		}
		if err := compressor.VerifyErrorBound(f, dec, compressor.ABS, c.ErrorBound); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSelectCodecEmpty(t *testing.T) {
	f := field(t, "cesm/TS")
	if _, err := SelectCodec(f, nil, 60, codec.Options{}, modelOpts); err == nil {
		t.Fatal("empty codec list accepted")
	}
}

func TestSwitchPointDetectsCrossover(t *testing.T) {
	// Build two synthetic profiles from fields engineered so the ranking
	// flips with bit-rate; if no crossover exists on real data the function
	// must simply report ok=false without error — exercise both paths using
	// RTM (where the paper found one) and accept either outcome, then check
	// the reported point is inside the sweep range when found.
	snaps, err := datagen.Generate("rtm", 5, datagen.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	f := snaps.Fields[len(snaps.Fields)-1]
	pa, err := core.NewProfile(f, predictor.Lorenzo, modelOpts)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := core.NewProfile(f, predictor.InterpolationCubic, modelOpts)
	if err != nil {
		t.Fatal(err)
	}
	if bits, ok := SwitchPoint(pa, pb, 0.5, 16, 24); ok {
		if bits < 0.5 || bits > 16 {
			t.Fatalf("switch point %v outside sweep", bits)
		}
	}
}
