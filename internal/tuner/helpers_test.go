package tuner

import (
	"testing"

	"rqm/internal/codec"
	"rqm/internal/compressor"
	"rqm/internal/datagen"
	"rqm/internal/grid"
)

// fieldForBudget returns a small noisy field for budget-stress tests.
func fieldForBudget(t *testing.T) *grid.Field {
	t.Helper()
	f, err := datagen.GenerateField("hacc/vx", 42, datagen.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// codecOptions returns default codec options for tuner tests.
func codecOptions() codec.Options {
	return codec.Options{Lossless: compressor.LosslessRLE}
}
