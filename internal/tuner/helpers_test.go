package tuner

import (
	"testing"

	"rqm/internal/compressor"
	"rqm/internal/datagen"
	"rqm/internal/grid"
)

// fieldForBudget returns a small noisy field for budget-stress tests.
func fieldForBudget(t *testing.T) *grid.Field {
	t.Helper()
	f, err := datagen.GenerateField("hacc/vx", 42, datagen.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// compressorOptions returns default compressor options for tuner tests.
func compressorOptions() compressor.Options {
	return compressor.Options{Lossless: compressor.LosslessRLE}
}
