package lz77

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func rt(t *testing.T, src []byte) []byte {
	t.Helper()
	enc := Encode(src)
	dec, err := Decode(enc, len(src))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !bytes.Equal(dec, src) {
		t.Fatal("round trip mismatch")
	}
	return enc
}

func TestRoundTripBasic(t *testing.T) {
	rt(t, nil)
	rt(t, []byte("a"))
	rt(t, []byte("abcabcabcabcabcabc"))
	rt(t, bytes.Repeat([]byte{7}, 5000))
	rt(t, []byte("the quick brown fox jumps over the lazy dog"))
}

func TestRepetitiveCompresses(t *testing.T) {
	src := bytes.Repeat([]byte("0123456789abcdef"), 1000)
	enc := rt(t, src)
	if len(enc) > len(src)/4 {
		t.Fatalf("repetitive input barely compressed: %d -> %d", len(src), len(enc))
	}
}

func TestOverlappingMatch(t *testing.T) {
	// "aaaa..." forces overlapping copies (dist 1, long length).
	src := bytes.Repeat([]byte{'a'}, 300)
	enc := rt(t, src)
	if len(enc) >= len(src) {
		t.Fatalf("run of same byte did not compress: %d", len(enc))
	}
}

func TestRandomIncompressibleBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	src := make([]byte, 4096)
	rng.Read(src)
	enc := rt(t, src)
	// Worst case: 1 header byte per 128 literals.
	if len(enc) > len(src)+len(src)/64+16 {
		t.Fatalf("expansion too large: %d -> %d", len(src), len(enc))
	}
}

func TestDecodeCorrupted(t *testing.T) {
	if _, err := Decode([]byte{0x05}, 6); err == nil {
		t.Fatal("truncated literals accepted")
	}
	if _, err := Decode([]byte{0x80}, 4); err == nil {
		t.Fatal("truncated match accepted")
	}
	if _, err := Decode([]byte{0x80, 5, 0}, 4); err == nil {
		t.Fatal("distance beyond output accepted")
	}
	if _, err := Decode([]byte{0x00, 'a'}, 5); err == nil {
		t.Fatal("wrong dstLen accepted")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, kind uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(3000)
		src := make([]byte, n)
		switch kind % 3 {
		case 0: // random
			rng.Read(src)
		case 1: // low-entropy
			for i := range src {
				src[i] = byte(rng.Intn(3))
			}
		case 2: // structured repeats
			pat := make([]byte, rng.Intn(20)+1)
			rng.Read(pat)
			for i := range src {
				src[i] = pat[i%len(pat)]
			}
		}
		enc := Encode(src)
		dec, err := Decode(enc, len(src))
		return err == nil && bytes.Equal(dec, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncode1MB(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	src := make([]byte, 1<<20)
	for i := range src {
		if rng.Float64() < 0.8 {
			src[i] = 0
		} else {
			src[i] = byte(rng.Intn(16))
		}
	}
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Encode(src)
	}
}
