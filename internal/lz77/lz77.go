// Package lz77 is a self-contained dictionary coder standing in for the
// Zstandard stage of SZ-style pipelines (the paper's "optional lossless
// encoder"). It is a greedy hash-chain LZ77 with a 64 KiB window.
//
// Token format:
//
//	0xxxxxxx                literal run of (x+1) bytes, followed by the bytes
//	1xxxxxxx dist16         match of length (x + MinMatch), distance 1..65535
//
// All multi-byte integers are little-endian.
package lz77

import (
	"encoding/binary"
	"errors"
)

const (
	// MinMatch is the shortest encodable match.
	MinMatch = 4
	// MaxMatch is the longest encodable match (127 + MinMatch).
	MaxMatch = 127 + MinMatch
	// maxLiteralRun is the longest literal run per token.
	maxLiteralRun = 128
	windowSize    = 1 << 16
	hashBits      = 15
	maxChain      = 32
)

func hash4(b []byte) uint32 {
	v := binary.LittleEndian.Uint32(b)
	return (v * 2654435761) >> (32 - hashBits)
}

// Encode compresses src. The output is self-delimiting given the original
// length (see Decode).
func Encode(src []byte) []byte {
	n := len(src)
	out := make([]byte, 0, n/2+16)
	if n == 0 {
		return out
	}
	head := make([]int32, 1<<hashBits)
	prev := make([]int32, n)
	for i := range head {
		head[i] = -1
	}
	litStart := 0
	flushLiterals := func(end int) {
		for litStart < end {
			run := end - litStart
			if run > maxLiteralRun {
				run = maxLiteralRun
			}
			out = append(out, byte(run-1))
			out = append(out, src[litStart:litStart+run]...)
			litStart += run
		}
	}
	insert := func(i int) {
		if i+MinMatch <= n {
			h := hash4(src[i:])
			prev[i] = head[h]
			head[h] = int32(i)
		}
	}
	i := 0
	for i < n {
		bestLen, bestDist := 0, 0
		if i+MinMatch <= n {
			h := hash4(src[i:])
			cand := head[h]
			for chain := 0; cand >= 0 && chain < maxChain; chain++ {
				c := int(cand)
				if i-c >= windowSize {
					break
				}
				// Quick reject on the byte after the current best.
				if bestLen > 0 && (c+bestLen >= n || i+bestLen >= n || src[c+bestLen] != src[i+bestLen]) {
					cand = prev[c]
					continue
				}
				l := 0
				maxL := n - i
				if maxL > MaxMatch {
					maxL = MaxMatch
				}
				for l < maxL && src[c+l] == src[i+l] {
					l++
				}
				if l > bestLen {
					bestLen, bestDist = l, i-c
					if l == MaxMatch {
						break
					}
				}
				cand = prev[c]
			}
		}
		if bestLen >= MinMatch {
			flushLiterals(i)
			out = append(out, 0x80|byte(bestLen-MinMatch))
			var d [2]byte
			binary.LittleEndian.PutUint16(d[:], uint16(bestDist))
			out = append(out, d[0], d[1])
			end := i + bestLen
			for ; i < end; i++ {
				insert(i)
			}
			litStart = i
			continue
		}
		insert(i)
		i++
	}
	flushLiterals(n)
	return out
}

// Decode decompresses to exactly dstLen bytes.
func Decode(src []byte, dstLen int) ([]byte, error) {
	out := make([]byte, 0, dstLen)
	i := 0
	for i < len(src) {
		tok := src[i]
		i++
		if tok&0x80 == 0 {
			run := int(tok) + 1
			if i+run > len(src) {
				return nil, errors.New("lz77: truncated literal run")
			}
			out = append(out, src[i:i+run]...)
			i += run
			continue
		}
		l := int(tok&0x7F) + MinMatch
		if i+2 > len(src) {
			return nil, errors.New("lz77: truncated match")
		}
		dist := int(binary.LittleEndian.Uint16(src[i:]))
		i += 2
		if dist == 0 || dist > len(out) {
			return nil, errors.New("lz77: invalid match distance")
		}
		start := len(out) - dist
		for j := 0; j < l; j++ {
			out = append(out, out[start+j])
		}
	}
	if len(out) != dstLen {
		return nil, errors.New("lz77: output length mismatch")
	}
	return out, nil
}
