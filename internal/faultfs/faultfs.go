// Package faultfs is the fault-injection harness behind the chaos suite: a
// read-side filesystem interposer that satisfies store.ReadFS (structurally
// — this package does not import the store) and corrupts what passes
// through it on demand. Faults come in two families:
//
//   - Transform faults rewrite the bytes a read returns — flip a byte at an
//     offset, truncate to a length, tear a manifest mid-JSON — without
//     touching the disk, so one store can serve intact and corrupt views of
//     the same committed dataset across test cases.
//
//   - Latency faults delay or hang reads, for exercising timeout/failover
//     paths. A hang blocks until the FS is Released or closed.
//
// Faults are keyed by path suffix (so tests write "nyx/t0/data.rqz"-style
// keys without caring about the temp root) and are matched against both
// Open and ReadFile. For on-disk (persistent) corruption — the kind scrub
// must find and quarantine — tests use CorruptFile, which rewrites the real
// file in place.
package faultfs

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"
)

// Fault describes what to do to reads of one matched path.
type Fault struct {
	// FlipByte XORs the byte at offset FlipOffset with 0xFF. Applied when
	// FlipOffset >= 0.
	FlipOffset int64
	// TruncateTo, when >= 0, cuts the returned content to at most this many
	// bytes.
	TruncateTo int64
	// Tear, when set, replaces the tail half of the content with garbage —
	// the shape of a manifest torn mid-write.
	Tear bool
	// Delay pauses each matched read before serving it.
	Delay time.Duration
	// Hang blocks each matched read until Release (or Close) is called.
	Hang bool
	// Err, when set, fails the matched read outright with this error.
	Err error
}

// NewFault returns a Fault with no byte-flip armed (FlipOffset sentinel -1
// and TruncateTo sentinel -1); fill in the fields to taste.
func NewFault() Fault { return Fault{FlipOffset: -1, TruncateTo: -1} }

// FS is the injectable read-side filesystem. The zero value is not usable;
// construct with New. Safe for concurrent use.
type FS struct {
	mu      sync.Mutex
	faults  map[string]Fault // path suffix → fault
	release chan struct{}    // closed to release hung reads

	reads   int64 // matched reads served (after any transform)
	hung    int64 // reads that blocked on a Hang fault
	flipped int64 // reads served with a byte flipped
}

// New returns an empty interposer: until faults are set, it is the real
// filesystem.
func New() *FS {
	return &FS{faults: map[string]Fault{}, release: make(chan struct{})}
}

// Set arms a fault for every path ending in suffix. Setting a suffix again
// replaces its fault.
func (f *FS) Set(suffix string, fault Fault) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faults[suffix] = fault
}

// Clear disarms the fault for suffix.
func (f *FS) Clear(suffix string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.faults, suffix)
}

// Reset disarms every fault and releases any hung reads.
func (f *FS) Reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faults = map[string]Fault{}
	close(f.release)
	f.release = make(chan struct{})
}

// Release unblocks reads currently parked on a Hang fault; the fault stays
// armed for future reads.
func (f *FS) Release() {
	f.mu.Lock()
	defer f.mu.Unlock()
	close(f.release)
	f.release = make(chan struct{})
}

// Stats reports reads served through the interposer, reads that hit a Hang
// fault, and reads served with a flipped byte.
func (f *FS) Stats() (reads, hung, flipped int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.reads, f.hung, f.flipped
}

// match finds the armed fault for path, if any.
func (f *FS) match(path string) (Fault, chan struct{}, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for suffix, fault := range f.faults {
		if strings.HasSuffix(path, suffix) {
			return fault, f.release, true
		}
	}
	return Fault{}, nil, false
}

// stall applies a fault's latency component.
func (f *FS) stall(fault Fault, release chan struct{}) {
	if fault.Delay > 0 {
		time.Sleep(fault.Delay)
	}
	if fault.Hang {
		f.mu.Lock()
		f.hung++
		f.mu.Unlock()
		<-release
	}
}

// transform applies a fault's byte-rewriting component to content.
func (f *FS) transform(fault Fault, data []byte) []byte {
	out := data
	if fault.TruncateTo >= 0 && int64(len(out)) > fault.TruncateTo {
		out = out[:fault.TruncateTo]
	}
	if fault.Tear && len(out) > 0 {
		torn := make([]byte, len(out))
		copy(torn, out)
		for i := len(torn) / 2; i < len(torn); i++ {
			torn[i] = 0xA5
		}
		out = torn
	}
	if fault.FlipOffset >= 0 && fault.FlipOffset < int64(len(out)) {
		flipped := make([]byte, len(out))
		copy(flipped, out)
		flipped[fault.FlipOffset] ^= 0xFF
		out = flipped
		f.mu.Lock()
		f.flipped++
		f.mu.Unlock()
	}
	return out
}

// ReadFile implements the store's read hook for whole-file reads.
func (f *FS) ReadFile(path string) ([]byte, error) {
	fault, release, ok := f.match(path)
	if !ok {
		return os.ReadFile(path)
	}
	f.stall(fault, release)
	if fault.Err != nil {
		return nil, fmt.Errorf("faultfs: %s: %w", path, fault.Err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	f.reads++
	f.mu.Unlock()
	return f.transform(fault, data), nil
}

// Open implements the store's read hook for seekable reads. A faulted open
// reads the whole file up front and serves the transformed bytes from
// memory — containers in tests are small, and it keeps every seek/read
// combination consistent with the injected view.
func (f *FS) Open(path string) (io.ReadSeekCloser, error) {
	fault, release, ok := f.match(path)
	if !ok {
		return os.Open(path)
	}
	f.stall(fault, release)
	if fault.Err != nil {
		return nil, fmt.Errorf("faultfs: %s: %w", path, fault.Err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	f.reads++
	f.mu.Unlock()
	return nopReadSeekCloser{bytes.NewReader(f.transform(fault, data))}, nil
}

type nopReadSeekCloser struct{ *bytes.Reader }

func (nopReadSeekCloser) Close() error { return nil }

// CorruptFile rewrites a real on-disk file in place, XOR-flipping the byte
// at offset (negative offsets count from the end). This is persistent
// corruption — the bit rot scrub exists to find — as opposed to the
// injected read views above.
func CorruptFile(path string, offset int64) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	if offset < 0 {
		offset += fi.Size()
	}
	if offset < 0 || offset >= fi.Size() {
		return errors.New("faultfs: flip offset outside file")
	}
	h, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer h.Close()
	b := make([]byte, 1)
	if _, err := h.ReadAt(b, offset); err != nil {
		return err
	}
	b[0] ^= 0xFF
	if _, err := h.WriteAt(b, offset); err != nil {
		return err
	}
	return h.Sync()
}
