package faultfs

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// writeTemp drops content into a temp file and returns its path.
func writeTemp(t *testing.T, name string, content []byte) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, content, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPassThroughWithoutFaults(t *testing.T) {
	content := []byte("hello integrity")
	p := writeTemp(t, "plain.bin", content)
	fs := New()

	got, err := fs.ReadFile(p)
	if err != nil || !bytes.Equal(got, content) {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	f, err := fs.Open(p)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got2, err := io.ReadAll(f)
	if err != nil || !bytes.Equal(got2, content) {
		t.Fatalf("Open/ReadAll = %q, %v", got2, err)
	}
	// Unfaulted traffic is not counted as interposed reads.
	if reads, _, _ := fs.Stats(); reads != 0 {
		t.Fatalf("reads = %d, want 0 for pass-through", reads)
	}
}

func TestFlipFault(t *testing.T) {
	content := []byte{0x10, 0x20, 0x30, 0x40}
	p := writeTemp(t, "data.rqz", content)
	fs := New()
	fault := NewFault()
	fault.FlipOffset = 2
	fs.Set("data.rqz", fault)

	got, err := fs.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0x10, 0x20, 0x30 ^ 0xFF, 0x40}
	if !bytes.Equal(got, want) {
		t.Fatalf("flipped read = %x, want %x", got, want)
	}
	// The transform is a view: the disk file is untouched.
	disk, _ := os.ReadFile(p)
	if !bytes.Equal(disk, content) {
		t.Fatalf("disk content changed: %x", disk)
	}
	// Open serves the same injected view through seeks.
	f, err := fs.Open(p)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Seek(2, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 1)
	if _, err := f.Read(b); err != nil || b[0] != 0x30^0xFF {
		t.Fatalf("seek+read through faulted Open = %x, %v", b, err)
	}
	if reads, _, flipped := fs.Stats(); reads != 2 || flipped != 2 {
		t.Fatalf("stats reads=%d flipped=%d, want 2/2", reads, flipped)
	}
}

func TestTruncateAndTearFaults(t *testing.T) {
	content := []byte("0123456789abcdef")
	p := writeTemp(t, "manifest.json", content)
	fs := New()

	short := NewFault()
	short.TruncateTo = 4
	fs.Set("manifest.json", short)
	got, err := fs.ReadFile(p)
	if err != nil || string(got) != "0123" {
		t.Fatalf("truncated read = %q, %v", got, err)
	}

	torn := NewFault()
	torn.Tear = true
	fs.Set("manifest.json", torn)
	got, err = fs.ReadFile(p)
	if err != nil || len(got) != len(content) {
		t.Fatalf("torn read = %q, %v", got, err)
	}
	if !bytes.Equal(got[:8], content[:8]) {
		t.Fatalf("torn read mangled the head: %q", got)
	}
	if bytes.Equal(got[8:], content[8:]) {
		t.Fatal("torn read left the tail intact")
	}
}

func TestErrAndDelayFaults(t *testing.T) {
	p := writeTemp(t, "data.rqz", []byte("x"))
	fs := New()
	sentinel := errors.New("disk on fire")
	f := NewFault()
	f.Err = sentinel
	fs.Set("data.rqz", f)
	if _, err := fs.ReadFile(p); !errors.Is(err, sentinel) {
		t.Fatalf("err fault: %v", err)
	}
	if _, err := fs.Open(p); !errors.Is(err, sentinel) {
		t.Fatalf("err fault via Open: %v", err)
	}

	d := NewFault()
	d.Delay = 30 * time.Millisecond
	fs.Set("data.rqz", d)
	start := time.Now()
	if _, err := fs.ReadFile(p); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("delayed read returned after %v", elapsed)
	}
}

func TestHangReleaseAndReset(t *testing.T) {
	p := writeTemp(t, "data.rqz", []byte("x"))
	fs := New()
	h := NewFault()
	h.Hang = true
	fs.Set("data.rqz", h)

	done := make(chan error, 1)
	go func() {
		_, err := fs.ReadFile(p)
		done <- err
	}()
	// The read must park, not return.
	select {
	case err := <-done:
		t.Fatalf("hung read returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	fs.Release()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("released read failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("read still hung after Release")
	}
	if _, hung, _ := fs.Stats(); hung != 1 {
		t.Fatalf("hung count = %d, want 1", hung)
	}

	// Reset disarms the fault entirely: the next read is pass-through.
	go func() {
		_, err := fs.ReadFile(p)
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("fault still armed after Release: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	fs.Reset()
	<-done
	if _, err := fs.ReadFile(p); err != nil {
		t.Fatalf("read after Reset: %v", err)
	}
}

func TestClear(t *testing.T) {
	p := writeTemp(t, "data.rqz", []byte{1, 2, 3})
	fs := New()
	f := NewFault()
	f.FlipOffset = 0
	fs.Set("data.rqz", f)
	fs.Clear("data.rqz")
	got, err := fs.ReadFile(p)
	if err != nil || !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("read after Clear = %x, %v", got, err)
	}
}

func TestCorruptFile(t *testing.T) {
	content := []byte{0xAA, 0xBB, 0xCC, 0xDD}
	p := writeTemp(t, "victim.bin", content)

	if err := CorruptFile(p, 1); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(p)
	if !bytes.Equal(got, []byte{0xAA, 0xBB ^ 0xFF, 0xCC, 0xDD}) {
		t.Fatalf("after flip at 1: %x", got)
	}
	// XOR 0xFF is an involution: a second flip restores the byte.
	if err := CorruptFile(p, 1); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(p)
	if !bytes.Equal(got, content) {
		t.Fatalf("double flip did not restore: %x", got)
	}
	// Negative offsets count from the end.
	if err := CorruptFile(p, -1); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(p)
	if got[3] != 0xDD^0xFF {
		t.Fatalf("flip at -1: %x", got)
	}
	// Out-of-range offsets are an error, not a silent no-op.
	if err := CorruptFile(p, 99); err == nil {
		t.Fatal("flip past EOF succeeded")
	}
	if err := CorruptFile(p, -99); err == nil {
		t.Fatal("flip before start succeeded")
	}
	if err := CorruptFile(filepath.Join(t.TempDir(), "absent"), 0); err == nil {
		t.Fatal("flip of missing file succeeded")
	}
}
