// Package fft implements complex FFTs from scratch: an iterative radix-2
// Cooley–Tukey kernel for power-of-two lengths and Bluestein's chirp-z
// algorithm for arbitrary lengths, plus separable 2D/3D transforms and the
// shell-averaged power spectrum used by the Nyx-style post-hoc analysis.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// Forward computes the in-place-forward DFT of x and returns the result in a
// new slice. Any length >= 1 is supported.
func Forward(x []complex128) []complex128 {
	return transform(x, false)
}

// Inverse computes the inverse DFT (with 1/N normalization).
func Inverse(x []complex128) []complex128 {
	out := transform(x, true)
	n := complex(float64(len(out)), 0)
	for i := range out {
		out[i] /= n
	}
	return out
}

func transform(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	copy(out, x)
	if n <= 1 {
		return out
	}
	if n&(n-1) == 0 {
		radix2(out, inverse)
		return out
	}
	return bluestein(out, inverse)
}

// radix2 runs the iterative Cooley–Tukey FFT in place; len(x) must be a
// power of two.
func radix2(x []complex128, inverse bool) {
	n := len(x)
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		wStep := cmplx.Exp(complex(0, step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
}

// bluestein evaluates an arbitrary-length DFT as a convolution, using a
// zero-padded power-of-two FFT of length >= 2n-1.
func bluestein(x []complex128, inverse bool) []complex128 {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp: w[k] = exp(sign*i*pi*k^2/n). Use k^2 mod 2n to avoid overflow
	// and precision loss for large k.
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		kk := (int64(k) * int64(k)) % int64(2*n)
		angle := sign * math.Pi * float64(kk) / float64(n)
		chirp[k] = cmplx.Exp(complex(0, angle))
	}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * chirp[k]
		b[k] = cmplx.Conj(chirp[k])
	}
	for k := 1; k < n; k++ {
		b[m-k] = cmplx.Conj(chirp[k])
	}
	radix2(a, false)
	radix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	radix2(a, true)
	inv := complex(1/float64(m), 0)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		out[k] = a[k] * inv * chirp[k]
	}
	return out
}

// ForwardReal transforms a real-valued signal and returns the complex
// spectrum (full length, conjugate-symmetric).
func ForwardReal(x []float64) []complex128 {
	c := make([]complex128, len(x))
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	return Forward(c)
}

// ForwardND computes the separable N-D DFT of a row-major array with the
// given dims (outermost first). It transforms along each axis in turn.
func ForwardND(data []complex128, dims []int) ([]complex128, error) {
	n := 1
	for _, d := range dims {
		n *= d
	}
	if n != len(data) {
		return nil, fmt.Errorf("fft: data length %d does not match dims %v", len(data), dims)
	}
	out := make([]complex128, len(data))
	copy(out, data)
	// Strides, outermost first.
	strides := make([]int, len(dims))
	acc := 1
	for i := len(dims) - 1; i >= 0; i-- {
		strides[i] = acc
		acc *= dims[i]
	}
	line := make([]complex128, 0)
	for axis := range dims {
		d := dims[axis]
		st := strides[axis]
		if cap(line) < d {
			line = make([]complex128, d)
		}
		line = line[:d]
		// Iterate over all 1-D lines along `axis`.
		numLines := n / d
		for li := 0; li < numLines; li++ {
			// Convert line index to a base offset skipping the axis dim.
			base := 0
			rem := li
			for ax := len(dims) - 1; ax >= 0; ax-- {
				if ax == axis {
					continue
				}
				c := rem % dims[ax]
				rem /= dims[ax]
				base += c * strides[ax]
			}
			for k := 0; k < d; k++ {
				line[k] = out[base+k*st]
			}
			res := Forward(line)
			for k := 0; k < d; k++ {
				out[base+k*st] = res[k]
			}
		}
	}
	return out, nil
}

// PowerSpectrum computes the shell-averaged isotropic power spectrum P(k) of
// a real N-D field: for each integer wavenumber shell |k| in [0, kmax], the
// mean of |F|^2 over Fourier modes in that shell. This mirrors the FFT-based
// analysis used for the Nyx cosmology data. Returns the per-shell means;
// shell 0 is the DC mode.
func PowerSpectrum(data []float64, dims []int) ([]float64, error) {
	c := make([]complex128, len(data))
	for i, v := range data {
		c[i] = complex(v, 0)
	}
	spec, err := ForwardND(c, dims)
	if err != nil {
		return nil, err
	}
	// Maximum shell: half the smallest dimension (Nyquist of the coarsest
	// axis keeps shells fully populated).
	minDim := dims[0]
	for _, d := range dims {
		if d < minDim {
			minDim = d
		}
	}
	kmax := minDim / 2
	sums := make([]float64, kmax+1)
	counts := make([]int64, kmax+1)
	// Walk all modes; fold frequencies above Nyquist to negative values.
	coord := make([]int, len(dims))
	for idx := range spec {
		// Decode coordinates.
		rem := idx
		for ax := len(dims) - 1; ax >= 0; ax-- {
			coord[ax] = rem % dims[ax]
			rem /= dims[ax]
		}
		var k2 float64
		for ax, c0 := range coord {
			k := c0
			if k > dims[ax]/2 {
				k -= dims[ax]
			}
			k2 += float64(k) * float64(k)
		}
		shell := int(math.Round(math.Sqrt(k2)))
		if shell > kmax {
			continue
		}
		p := real(spec[idx])*real(spec[idx]) + imag(spec[idx])*imag(spec[idx])
		sums[shell] += p
		counts[shell]++
	}
	for i := range sums {
		if counts[i] > 0 {
			sums[i] /= float64(counts[i])
		}
	}
	return sums, nil
}

// SpectrumRatio returns P_b(k)/P_a(k) per shell (1 where P_a is ~0). The
// cosmology acceptance criterion in the paper's lineage is that the
// decompressed/original spectrum ratio stays within 1±tolerance.
func SpectrumRatio(pa, pb []float64) []float64 {
	n := len(pa)
	if len(pb) < n {
		n = len(pb)
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		if math.Abs(pa[i]) < 1e-300 {
			out[i] = 1
			continue
		}
		out[i] = pb[i] / pa[i]
	}
	return out
}
