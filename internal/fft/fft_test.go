package fft

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

// naiveDFT is the O(n^2) reference.
func naiveDFT(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			angle := sign * 2 * math.Pi * float64(k) * float64(j) / float64(n)
			s += x[j] * cmplx.Exp(complex(0, angle))
		}
		out[k] = s
	}
	return out
}

func maxErr(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func randSignal(n int, seed int64) []complex128 {
	x := make([]complex128, n)
	s := uint64(seed)*2654435761 + 1
	next := func() float64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return float64(s>>11)/float64(1<<53)*2 - 1
	}
	for i := range x {
		x[i] = complex(next(), next())
	}
	return x
}

func TestForwardMatchesNaive(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 12, 16, 17, 31, 32, 100} {
		x := randSignal(n, int64(n))
		got := Forward(x)
		want := naiveDFT(x, false)
		if e := maxErr(got, want); e > 1e-8*float64(n) {
			t.Fatalf("n=%d: max err %g", n, e)
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 6, 8, 15, 64, 129} {
		x := randSignal(n, int64(n)+99)
		back := Inverse(Forward(x))
		if e := maxErr(back, x); e > 1e-9*float64(n+1) {
			t.Fatalf("n=%d: round-trip err %g", n, e)
		}
	}
}

func TestForwardDoesNotMutateInput(t *testing.T) {
	x := randSignal(16, 5)
	cp := append([]complex128(nil), x...)
	Forward(x)
	for i := range x {
		if x[i] != cp[i] {
			t.Fatal("Forward mutated its input")
		}
	}
}

func TestImpulseResponse(t *testing.T) {
	// DFT of a unit impulse is all-ones.
	x := make([]complex128, 8)
	x[0] = 1
	f := Forward(x)
	for i, v := range f {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("bin %d = %v, want 1", i, v)
		}
	}
}

func TestSinusoidPeak(t *testing.T) {
	// A pure tone at bin 3 concentrates all energy there.
	n := 64
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 2*math.Pi*3*float64(i)/float64(n)))
	}
	f := Forward(x)
	for i, v := range f {
		mag := cmplx.Abs(v)
		if i == 3 {
			if math.Abs(mag-float64(n)) > 1e-9 {
				t.Fatalf("peak bin magnitude = %v", mag)
			}
		} else if mag > 1e-9 {
			t.Fatalf("leak at bin %d: %v", i, mag)
		}
	}
}

func TestParsevalProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%63 + 1
		x := randSignal(n, seed)
		fx := Forward(x)
		var et, ef float64
		for i := range x {
			et += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
			ef += real(fx[i])*real(fx[i]) + imag(fx[i])*imag(fx[i])
		}
		return math.Abs(ef-float64(n)*et) <= 1e-7*(1+ef)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestForwardNDMatchesNaiveRows(t *testing.T) {
	// 2D separability: transform of each row then each column must equal
	// ForwardND.
	const r, c = 4, 6
	data := randSignal(r*c, 77)
	nd, err := ForwardND(data, []int{r, c})
	if err != nil {
		t.Fatal(err)
	}
	// Manual separable transform.
	tmp := make([]complex128, r*c)
	copy(tmp, data)
	for i := 0; i < r; i++ {
		row := Forward(tmp[i*c : (i+1)*c])
		copy(tmp[i*c:(i+1)*c], row)
	}
	col := make([]complex128, r)
	for j := 0; j < c; j++ {
		for i := 0; i < r; i++ {
			col[i] = tmp[i*c+j]
		}
		res := Forward(col)
		for i := 0; i < r; i++ {
			tmp[i*c+j] = res[i]
		}
	}
	if e := maxErr(nd, tmp); e > 1e-9 {
		t.Fatalf("2D mismatch: %g", e)
	}
}

func TestForwardNDBadDims(t *testing.T) {
	if _, err := ForwardND(make([]complex128, 5), []int{2, 3}); err == nil {
		t.Fatal("dims mismatch accepted")
	}
}

func TestForwardND3DDCComponent(t *testing.T) {
	dims := []int{3, 4, 5}
	n := 60
	data := make([]complex128, n)
	var sum complex128
	for i := range data {
		data[i] = complex(float64(i%7), 0)
		sum += data[i]
	}
	nd, err := ForwardND(data, dims)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(nd[0]-sum) > 1e-9 {
		t.Fatalf("DC = %v, want %v", nd[0], sum)
	}
}

func TestPowerSpectrumConstantField(t *testing.T) {
	dims := []int{8, 8}
	data := make([]float64, 64)
	for i := range data {
		data[i] = 3
	}
	ps, err := PowerSpectrum(data, dims)
	if err != nil {
		t.Fatal(err)
	}
	// All energy at DC: shell 0 = (3*64)^2, all other shells ~0.
	if math.Abs(ps[0]-float64(192*192)) > 1e-6 {
		t.Fatalf("DC power = %v", ps[0])
	}
	for i := 1; i < len(ps); i++ {
		if ps[i] > 1e-9 {
			t.Fatalf("shell %d power = %v", i, ps[i])
		}
	}
}

func TestPowerSpectrumTone(t *testing.T) {
	// cos wave with wavenumber 2 along x in a 16x16 grid → power in shell 2.
	dims := []int{16, 16}
	data := make([]float64, 256)
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			data[i*16+j] = math.Cos(2 * math.Pi * 2 * float64(j) / 16)
		}
	}
	ps, err := PowerSpectrum(data, dims)
	if err != nil {
		t.Fatal(err)
	}
	best := 0
	for i := 1; i < len(ps); i++ {
		if ps[i] > ps[best] {
			best = i
		}
	}
	if best != 2 {
		t.Fatalf("peak shell = %d, want 2 (spectrum %v)", best, ps)
	}
}

func TestSpectrumRatio(t *testing.T) {
	r := SpectrumRatio([]float64{1, 2, 0}, []float64{2, 2, 5})
	if r[0] != 2 || r[1] != 1 || r[2] != 1 {
		t.Fatalf("SpectrumRatio = %v", r)
	}
}

func BenchmarkForward4096(b *testing.B) {
	x := randSignal(4096, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Forward(x)
	}
}

func BenchmarkForwardND64cube(b *testing.B) {
	x := randSignal(64*64*64, 2)
	dims := []int{64, 64, 64}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ForwardND(x, dims); err != nil {
			b.Fatal(err)
		}
	}
}
