module rqm

go 1.24
