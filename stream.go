package rqm

import (
	"io"

	"rqm/internal/codec"
	"rqm/internal/partition"
	"rqm/internal/stream"
)

// Streaming: the chunked compression pipeline. NewWriter splits a value
// stream into chunks, compresses them concurrently on a bounded worker
// pool, and emits a self-describing chunked container (envelope v2) whose
// trailer index makes every chunk randomly addressable; NewReader runs the
// pipeline in reverse. Memory stays O(workers × chunk size) on both sides,
// so arbitrarily large datasets stream through a fixed footprint, and
// rqm.Decompress reads chunked containers like any other.
//
// Write side:
//
//	var buf bytes.Buffer
//	w, _ := rqm.NewWriter(&buf,
//	    rqm.WithStreamShape(rqm.Float64, 512, 512, 512),
//	    rqm.WithStreamCompression(rqm.CodecOptions{Mode: rqm.REL, ErrorBound: 1e-3}),
//	    rqm.WithStreamValueRange(lo, hi), // REL resolves once, stream-globally
//	    rqm.WithStreamWorkers(8))
//	_ = w.WriteValues(field.Data) // or io.Copy(w, rawSampleFile)
//	_ = w.Close()                 // flush + trailer index
//
// A REL bound is defined against the whole field's value range, so the
// writer refuses to guess it from chunk-local ranges: REL mode requires the
// stream-global range, either declared with WithStreamValueRange as above or
// resolved from a known field via Engine.NewFieldStreamWriter
// (ErrStreamNeedsValueRange otherwise). Streamed and whole-buffer REL
// compression of the same field therefore enforce the same absolute bound.
//
// Read side (either API):
//
//	r, _ := rqm.NewReader(&buf)
//	back, _ := r.ReadAll()        // or chunk-at-a-time via r.NextChunk()
//
// Adaptive per-chunk tuning — the paper's ratio-quality model driving the
// pipeline: each chunk is profiled with one cheap sampling pass and
// compressed at the bound the model solves for a global target, so smooth
// regions get loose bounds and complex regions tight ones:
//
//	w, _ := rqm.NewWriter(&buf,
//	    rqm.WithAdaptiveBound(rqm.AdaptiveBound{TargetPSNR: 70}))
//
// Spatial partitioning goes one step further: instead of slicing the stream
// into fixed-size slabs, a Partitioner plans chunk geometry from the data
// itself. VarianceQuadtree recursively splits the field where variance is
// non-uniform and solves the model per region, so one container mixes large
// loose-bound chunks over smooth regions with small tight-bound chunks over
// turbulent ones — a better ratio at the same delivered quality:
//
//	w, _ := rqm.NewWriter(&buf,
//	    rqm.WithStreamShape(rqm.Float64, 512, 512, 512),
//	    rqm.WithAdaptiveBound(rqm.AdaptiveBound{TargetPSNR: 70}),
//	    rqm.WithPartitioner(rqm.VarianceQuadtree{}))
type (
	// StreamWriter is the chunked, concurrent compression writer.
	StreamWriter = stream.Writer
	// StreamReader is the chunked, concurrent decompression reader.
	StreamReader = stream.Reader
	// StreamOption configures NewWriter.
	StreamOption = stream.Option
	// StreamReaderOption configures NewReader.
	StreamReaderOption = stream.ReaderOption
	// StreamStats summarizes a finished stream write.
	StreamStats = stream.Stats
	// AdaptiveBound is the per-chunk error-bound policy for NewWriter: the
	// ratio-quality model profiles every chunk and solves for the bound
	// meeting a global ratio or PSNR target.
	AdaptiveBound = stream.AdaptiveBound
	// Partitioner plans how a stream's values are split into independently
	// compressed chunks (the partition layer; see WithPartitioner).
	Partitioner = partition.Partitioner
	// FixedSlab is the default Partitioner: uniform fixed-size slabs, the
	// historical chunking behavior.
	FixedSlab = partition.FixedSlab
	// VarianceQuadtree is the spatially adaptive Partitioner: it splits the
	// field where variance is non-uniform and solves the ratio-quality model
	// per region. Requires WithAdaptiveBound.
	VarianceQuadtree = partition.VarianceQuadtree
	// PartitionRegion is one planned region of a partitioned window.
	PartitionRegion = partition.Region
	// PartitionPlan is a Partitioner's output: an ordered tiling of regions.
	PartitionPlan = partition.Plan
	// StreamHeader describes a chunked container stream.
	StreamHeader = codec.StreamHeader
	// StreamIndex is a chunked container's random-access directory.
	StreamIndex = codec.StreamIndex
	// StreamIndexEntry locates one chunk inside a chunked container.
	StreamIndexEntry = codec.IndexEntry
)

// ErrEmptyStream marks a structurally valid chunked container holding zero
// values.
var ErrEmptyStream = stream.ErrEmptyStream

// ErrChecksum marks a chunk or trailer whose CRC does not match its bytes.
var ErrChecksum = codec.ErrChecksum

// ErrStreamNeedsValueRange marks a REL-mode NewWriter without a declared
// stream-global value range (see WithStreamValueRange).
var ErrStreamNeedsValueRange = stream.ErrNeedValueRange

// NewWriter starts a streaming compressor over w: values written through it
// are chunked, compressed concurrently, and framed into a chunked container.
// Close finalizes the container with its trailer index.
func NewWriter(w io.Writer, opts ...StreamOption) (*StreamWriter, error) {
	return stream.NewWriter(w, opts...)
}

// NewReader starts a streaming decompressor over a chunked container,
// decoding chunks concurrently and handing them back in stream order.
func NewReader(r io.Reader, opts ...StreamReaderOption) (*StreamReader, error) {
	return stream.NewReader(r, opts...)
}

// WithStreamCodec selects the backend codec for every chunk.
func WithStreamCodec(c Codec) StreamOption { return stream.WithCodec(c) }

// WithStreamCodecName selects the backend codec by registered name.
func WithStreamCodecName(name string) StreamOption { return stream.WithCodecName(name) }

// WithStreamCompression sets the codec options applied to every chunk.
func WithStreamCompression(o CodecOptions) StreamOption { return stream.WithCompression(o) }

// WithStreamModel tunes the ratio-quality model behind WithAdaptiveBound.
func WithStreamModel(o ModelOptions) StreamOption { return stream.WithModel(o) }

// WithAdaptiveBound installs the per-chunk adaptive error-bound policy.
func WithAdaptiveBound(a AdaptiveBound) StreamOption { return stream.WithAdaptive(a) }

// WithChunkSize sets the chunk size in values (default 256 Ki).
func WithChunkSize(values int) StreamOption { return stream.WithChunkValues(values) }

// WithPartitioner installs the chunk-planning strategy. The default
// FixedSlab reproduces the historical uniform slabs byte for byte;
// VarianceQuadtree plans variance-guided spatial regions with per-region
// solved bounds (requires WithAdaptiveBound).
func WithPartitioner(p Partitioner) StreamOption { return stream.WithPartitioner(p) }

// PartitionerByName resolves a registered partitioner by name: "" or "fixed"
// for FixedSlab, "variance-quadtree" for VarianceQuadtree. Manifest and
// service layers use these names to make adaptive-space geometry
// reproducible.
func PartitionerByName(name string) (Partitioner, error) { return partition.ByName(name) }

// WithStreamWorkers sets the concurrent chunk-compressor count (default
// GOMAXPROCS).
func WithStreamWorkers(n int) StreamOption { return stream.WithWorkers(n) }

// WithStreamShape records the logical field shape and precision in the
// stream header so readers reassemble the original N-dimensional field.
func WithStreamShape(prec Precision, dims ...int) StreamOption {
	return stream.WithShape(prec, dims...)
}

// WithStreamFieldName records the field name in the stream header.
func WithStreamFieldName(name string) StreamOption { return stream.WithName(name) }

// WithStreamValueRange declares the stream-global value range a REL error
// bound resolves against — once, for the whole stream — so streamed and
// whole-buffer REL compression enforce the same absolute bound. Required for
// REL mode; ignored by ABS and PWREL.
func WithStreamValueRange(lo, hi float64) StreamOption { return stream.WithValueRange(lo, hi) }

// WithStreamReaderWorkers sets the concurrent chunk-decompressor count
// (default GOMAXPROCS).
func WithStreamReaderWorkers(n int) StreamReaderOption { return stream.WithReaderWorkers(n) }

// IsChunkedContainer reports whether data begins with a chunked stream
// container signature (5 bytes suffice).
func IsChunkedContainer(data []byte) bool { return codec.IsChunked(data) }

// ReadStreamIndex loads a chunked container's trailer index through its
// footer — the random-access entry point. With the index, ReadStreamChunk
// decodes any chunk without touching the rest of the container.
func ReadStreamIndex(rs io.ReadSeeker) (*StreamIndex, error) {
	return codec.LoadIndex(rs)
}

// ReadStreamChunk random-accesses one indexed chunk: seek to its record,
// verify the CRC, and decompress just that chunk's samples.
func ReadStreamChunk(rs io.ReadSeeker, e StreamIndexEntry) ([]float64, error) {
	c, err := codec.ReadChunkAt(rs, e)
	if err != nil {
		return nil, err
	}
	return codec.DecodeChunk(c)
}
