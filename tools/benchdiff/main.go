// Command benchdiff gates benchmark regressions in CI: it parses `go test
// -bench` output, reduces the -count=N samples of each benchmark to its
// best observation (benchstat-style: the minimum ns/op, which is the least
// noisy summary on shared runners), and compares against a checked-in JSON
// baseline. A benchmark regressing by more than its threshold (default 20%)
// fails the run.
//
// Usage:
//
//	go test -run '^$' -bench 'Engine|Stream' -benchtime=1x -count=5 . | tee bench.txt
//	go run ./tools/benchdiff -baseline BENCH_BASELINE.json bench.txt
//
// Recalibrate the baseline (e.g. after an intentional change or on a new
// runner generation) with:
//
//	go run ./tools/benchdiff -baseline BENCH_BASELINE.json -update bench.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the checked-in reference file.
type Baseline struct {
	// DefaultThreshold is the allowed fractional regression (e.g. 0.20)
	// for benchmarks without their own threshold.
	DefaultThreshold float64 `json:"default_threshold"`
	// Benchmarks maps benchmark name (sub-benchmarks use their full
	// slash-joined name, CPU suffix stripped) to its reference observation.
	Benchmarks map[string]Entry `json:"benchmarks"`
}

// Entry is one benchmark's reference numbers.
type Entry struct {
	// NsPerOp is the best (minimum) ns/op observed at calibration time.
	NsPerOp float64 `json:"ns_per_op"`
	// MBPerS is the best (maximum) MB/s, when the benchmark reports it.
	MBPerS float64 `json:"mb_per_s,omitempty"`
	// AllocsPerOp is the best (minimum) allocs/op, when the benchmark runs
	// with -benchmem; it gets its own gate so the zero-allocation hot path
	// cannot silently regress even while staying within the time threshold.
	// A pointer so a genuine 0 allocs/op baseline round-trips through JSON
	// (omitempty would drop it and silently disable the gate); nil means the
	// calibration run had no -benchmem data.
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Threshold overrides the default fractional regression allowance.
	Threshold float64 `json:"threshold,omitempty"`
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkStreamWriter/workers=4-8   1   62896936 ns/op   112.53 MB/s   298 B/op   5 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.e+]+) ns/op(?:\s+([\d.e+]+) MB/s)?(?:\s+[\d.e+]+ B/op)?(?:\s+([\d.e+]+) allocs/op)?`)

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_BASELINE.json", "baseline JSON file")
		update       = flag.Bool("update", false, "rewrite the baseline from this run instead of comparing")
		threshold    = flag.Float64("threshold", 0.20, "default fractional regression allowance for -update")
		summaryPath  = flag.String("summary", "", "also write a markdown comparison table to this file (CI job summary)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-baseline file.json] [-update] [-summary out.md] bench-output.txt (or - for stdin)")
		os.Exit(2)
	}
	samples, err := parseBench(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if len(samples) == 0 {
		fatal(fmt.Errorf("no benchmark result lines in %s", flag.Arg(0)))
	}
	if *update {
		if err := writeBaseline(*baselinePath, samples, *threshold); err != nil {
			fatal(err)
		}
		fmt.Printf("benchdiff: wrote %d benchmarks to %s\n", len(samples), *baselinePath)
		return
	}
	base, err := readBaseline(*baselinePath)
	if err != nil {
		fatal(err)
	}
	if *summaryPath != "" {
		if err := writeSummary(*summaryPath, base, samples); err != nil {
			fatal(err)
		}
	}
	if err := compare(base, samples); err != nil {
		fatal(err)
	}
}

// sample aggregates the repeated observations of one benchmark.
type sample struct {
	bestNs     float64 // minimum ns/op
	bestMBPS   float64 // maximum MB/s (0 when unreported)
	bestAllocs float64 // minimum allocs/op (-1 when unreported)
	count      int
}

// parseBench reads a -bench output file ("-" = stdin) into best-of samples.
func parseBench(path string) (map[string]*sample, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	out := map[string]*sample{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		s := out[m[1]]
		if s == nil {
			s = &sample{bestNs: ns, bestAllocs: -1}
			out[m[1]] = s
		}
		s.count++
		if ns < s.bestNs {
			s.bestNs = ns
		}
		if m[3] != "" {
			if mbps, err := strconv.ParseFloat(m[3], 64); err == nil && mbps > s.bestMBPS {
				s.bestMBPS = mbps
			}
		}
		if m[4] != "" {
			if allocs, err := strconv.ParseFloat(m[4], 64); err == nil {
				if s.bestAllocs < 0 || allocs < s.bestAllocs {
					s.bestAllocs = allocs
				}
			}
		}
	}
	return out, sc.Err()
}

// compare checks every baseline benchmark against the run, reporting all
// regressions before failing.
func compare(base *Baseline, samples map[string]*sample) error {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	var failures int
	for _, name := range names {
		e := base.Benchmarks[name]
		s, ok := samples[name]
		if !ok {
			fmt.Printf("FAIL %s: in baseline but missing from this run (renamed? update the baseline)\n", name)
			failures++
			continue
		}
		allowed := e.Threshold
		if allowed == 0 {
			allowed = base.DefaultThreshold
		}
		if allowed == 0 {
			allowed = 0.20
		}
		// Prefer throughput when both sides have it; fall back to ns/op.
		switch {
		case e.MBPerS > 0 && s.bestMBPS > 0:
			floor := e.MBPerS * (1 - allowed)
			if s.bestMBPS < floor {
				fmt.Printf("FAIL %s: %.2f MB/s, below %.2f (baseline %.2f - %d%%)\n",
					name, s.bestMBPS, floor, e.MBPerS, int(allowed*100))
				failures++
			} else {
				fmt.Printf("ok   %s: %.2f MB/s (baseline %.2f)\n", name, s.bestMBPS, e.MBPerS)
			}
		case e.NsPerOp > 0:
			ceil := e.NsPerOp * (1 + allowed)
			if s.bestNs > ceil {
				fmt.Printf("FAIL %s: %.0f ns/op, above %.0f (baseline %.0f + %d%%)\n",
					name, s.bestNs, ceil, e.NsPerOp, int(allowed*100))
				failures++
			} else {
				fmt.Printf("ok   %s: %.0f ns/op (baseline %.0f)\n", name, s.bestNs, e.NsPerOp)
			}
		default:
			fmt.Printf("ok   %s: baseline has no reference numbers, skipped\n", name)
		}
		// Allocations gate on top of the time gate, when both sides report
		// them. Runs without -benchmem simply skip it. A 0 allocs/op
		// baseline gates too: its ceiling is 0, so any allocation fails.
		if e.AllocsPerOp != nil && s.bestAllocs >= 0 {
			base := *e.AllocsPerOp
			ceil := base * (1 + allowed)
			if s.bestAllocs > ceil {
				fmt.Printf("FAIL %s: %.0f allocs/op, above %.0f (baseline %.0f + %d%%)\n",
					name, s.bestAllocs, ceil, base, int(allowed*100))
				failures++
			} else {
				fmt.Printf("ok   %s: %.0f allocs/op (baseline %.0f)\n", name, s.bestAllocs, base)
			}
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond their threshold", failures)
	}
	fmt.Printf("benchdiff: %d benchmarks within thresholds\n", len(names))
	return nil
}

func readBaseline(path string) (*Baseline, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(raw, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &b, nil
}

func writeBaseline(path string, samples map[string]*sample, threshold float64) error {
	b := Baseline{DefaultThreshold: threshold, Benchmarks: map[string]Entry{}}
	for name, s := range samples {
		e := Entry{NsPerOp: s.bestNs, MBPerS: s.bestMBPS}
		if s.bestAllocs >= 0 {
			allocs := s.bestAllocs
			e.AllocsPerOp = &allocs
		}
		b.Benchmarks[name] = e
	}
	raw, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// writeSummary renders the baseline-vs-run comparison as a markdown table —
// the before/after MB/s and allocs/op view the CI job summary shows.
func writeSummary(path string, base *Baseline, samples map[string]*sample) error {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	var sb strings.Builder
	sb.WriteString("### Benchmark comparison (best of run vs committed baseline)\n\n")
	sb.WriteString("| benchmark | base MB/s | run MB/s | base ns/op | run ns/op | base allocs/op | run allocs/op |\n")
	sb.WriteString("|---|---:|---:|---:|---:|---:|---:|\n")
	num := func(v float64, format string) string {
		if v <= 0 {
			return "—"
		}
		return fmt.Sprintf(format, v)
	}
	baseAllocs := func(e Entry) string {
		if e.AllocsPerOp == nil {
			return "—"
		}
		return fmt.Sprintf("%.0f", *e.AllocsPerOp)
	}
	for _, name := range names {
		e := base.Benchmarks[name]
		s, ok := samples[name]
		if !ok {
			fmt.Fprintf(&sb, "| %s | %s | missing | %s | missing | %s | missing |\n",
				name, num(e.MBPerS, "%.2f"), num(e.NsPerOp, "%.0f"), baseAllocs(e))
			continue
		}
		runAllocs := "—"
		if s.bestAllocs >= 0 {
			runAllocs = fmt.Sprintf("%.0f", s.bestAllocs)
		}
		fmt.Fprintf(&sb, "| %s | %s | %s | %s | %s | %s | %s |\n",
			name,
			num(e.MBPerS, "%.2f"), num(s.bestMBPS, "%.2f"),
			num(e.NsPerOp, "%.0f"), num(s.bestNs, "%.0f"),
			baseAllocs(e), runAllocs)
	}
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
