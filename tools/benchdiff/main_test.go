package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: rqm
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkStreamWriter/workers=1-8         	       1	  53169023 ns/op	 133.12 MB/s	29797144 B/op	   10052 allocs/op
BenchmarkStreamWriter/workers=1-8         	       1	  51000000 ns/op	 140.00 MB/s	29797144 B/op	   10052 allocs/op
BenchmarkStreamWriter/workers=4-8         	       1	  62896936 ns/op	 112.53 MB/s	29788816 B/op	   10052 allocs/op
BenchmarkEngineBatch4-8                   	       2	  11000000 ns/op
BenchmarkEngineBatch4-8                   	       2	  10500000 ns/op
PASS
ok  	rqm	13.804s
`

// fp builds the *float64 baseline fields.
func fp(v float64) *float64 { return &v }

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseBenchBestOf(t *testing.T) {
	samples, err := parseBench(writeTemp(t, "bench.txt", benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	sw := samples["BenchmarkStreamWriter/workers=1"]
	if sw == nil || sw.count != 2 {
		t.Fatalf("workers=1 sample %+v, want 2 observations", sw)
	}
	if sw.bestNs != 51000000 || sw.bestMBPS != 140 {
		t.Fatalf("best-of reduction got ns=%v mbps=%v, want 51000000/140", sw.bestNs, sw.bestMBPS)
	}
	eb := samples["BenchmarkEngineBatch4"]
	if eb == nil || eb.bestNs != 10500000 || eb.bestMBPS != 0 {
		t.Fatalf("EngineBatch4 sample %+v, want ns=10500000 no MB/s", eb)
	}
}

func TestCompareThresholds(t *testing.T) {
	samples, err := parseBench(writeTemp(t, "bench.txt", benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	pass := &Baseline{
		DefaultThreshold: 0.20,
		Benchmarks: map[string]Entry{
			// 140 MB/s observed vs 160 baseline: -12.5%, within 20%.
			"BenchmarkStreamWriter/workers=1": {NsPerOp: 45000000, MBPerS: 160},
			// 10.5ms observed vs 9ms baseline: +16.7%, within 20%.
			"BenchmarkEngineBatch4": {NsPerOp: 9000000},
		},
	}
	if err := compare(pass, samples); err != nil {
		t.Fatalf("within-threshold run failed: %v", err)
	}

	failTooSlow := &Baseline{
		DefaultThreshold: 0.20,
		Benchmarks: map[string]Entry{
			// 140 MB/s observed vs 200 baseline: -30%, beyond 20%.
			"BenchmarkStreamWriter/workers=1": {NsPerOp: 40000000, MBPerS: 200},
		},
	}
	if err := compare(failTooSlow, samples); err == nil {
		t.Fatal("30% throughput regression passed the 20% gate")
	}

	perBench := &Baseline{
		DefaultThreshold: 0.20,
		Benchmarks: map[string]Entry{
			// Same -30% regression, but this benchmark allows 40%.
			"BenchmarkStreamWriter/workers=1": {NsPerOp: 40000000, MBPerS: 200, Threshold: 0.40},
		},
	}
	if err := compare(perBench, samples); err != nil {
		t.Fatalf("per-benchmark threshold override not honored: %v", err)
	}

	missing := &Baseline{
		DefaultThreshold: 0.20,
		Benchmarks:       map[string]Entry{"BenchmarkGone": {NsPerOp: 1}},
	}
	if err := compare(missing, samples); err == nil {
		t.Fatal("baseline benchmark missing from the run passed the gate")
	}
}

func TestParseBenchAllocs(t *testing.T) {
	samples, err := parseBench(writeTemp(t, "bench.txt", benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	sw := samples["BenchmarkStreamWriter/workers=1"]
	if sw == nil || sw.bestAllocs != 10052 {
		t.Fatalf("workers=1 sample %+v, want 10052 allocs/op", sw)
	}
	// EngineBatch4 ran without -benchmem: allocs must stay unreported.
	if eb := samples["BenchmarkEngineBatch4"]; eb == nil || eb.bestAllocs != -1 {
		t.Fatalf("EngineBatch4 sample %+v, want allocs unreported (-1)", eb)
	}
}

func TestCompareAllocsGate(t *testing.T) {
	samples, err := parseBench(writeTemp(t, "bench.txt", benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	pass := &Baseline{
		DefaultThreshold: 0.20,
		Benchmarks: map[string]Entry{
			// 10052 allocs observed vs 9000 baseline: +11.7%, within 20%.
			"BenchmarkStreamWriter/workers=1": {NsPerOp: 51000000, MBPerS: 140, AllocsPerOp: fp(9000)},
		},
	}
	if err := compare(pass, samples); err != nil {
		t.Fatalf("within-threshold allocs failed: %v", err)
	}
	fail := &Baseline{
		DefaultThreshold: 0.20,
		Benchmarks: map[string]Entry{
			// 10052 allocs observed vs 5000 baseline: +100%, beyond 20% —
			// must fail even though time and throughput are fine.
			"BenchmarkStreamWriter/workers=1": {NsPerOp: 51000000, MBPerS: 140, AllocsPerOp: fp(5000)},
		},
	}
	if err := compare(fail, samples); err == nil {
		t.Fatal("2x allocation regression passed the 20% gate")
	}
	// A baseline without allocs must not gate a -benchmem run, and vice
	// versa: EngineBatch4 has no allocs on either side here.
	noAllocs := &Baseline{
		DefaultThreshold: 0.20,
		Benchmarks:       map[string]Entry{"BenchmarkEngineBatch4": {NsPerOp: 10000000}},
	}
	if err := compare(noAllocs, samples); err != nil {
		t.Fatalf("allocs-free comparison failed: %v", err)
	}
	// A true zero-allocation baseline must survive the JSON round trip and
	// still gate: any allocation at all is a regression from 0.
	zero := &Baseline{
		DefaultThreshold: 0.20,
		Benchmarks: map[string]Entry{
			"BenchmarkStreamWriter/workers=1": {NsPerOp: 51000000, MBPerS: 140, AllocsPerOp: fp(0)},
		},
	}
	enc, err := json.Marshal(zero)
	if err != nil {
		t.Fatal(err)
	}
	back, err := readBaseline(writeTemp(t, "zero.json", string(enc)))
	if err != nil {
		t.Fatal(err)
	}
	e := back.Benchmarks["BenchmarkStreamWriter/workers=1"]
	if e.AllocsPerOp == nil || *e.AllocsPerOp != 0 {
		t.Fatalf("0 allocs/op baseline did not round-trip: %+v", e)
	}
	if err := compare(back, samples); err == nil {
		t.Fatal("10052 allocs/op passed a 0 allocs/op baseline")
	}
}

func TestWriteSummary(t *testing.T) {
	samples, err := parseBench(writeTemp(t, "bench.txt", benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	base := &Baseline{
		DefaultThreshold: 0.20,
		Benchmarks: map[string]Entry{
			"BenchmarkStreamWriter/workers=1": {NsPerOp: 45000000, MBPerS: 160, AllocsPerOp: fp(9000)},
			"BenchmarkGone":                   {NsPerOp: 12345},
		},
	}
	path := filepath.Join(t.TempDir(), "summary.md")
	if err := writeSummary(path, base, samples); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	md := string(raw)
	for _, want := range []string{
		"| BenchmarkStreamWriter/workers=1 | 160.00 | 140.00 |",
		"10052",
		"| BenchmarkGone | — | missing |",
	} {
		if !strings.Contains(md, want) {
			t.Fatalf("summary missing %q:\n%s", want, md)
		}
	}
}

func TestUpdateRoundTrip(t *testing.T) {
	samples, err := parseBench(writeTemp(t, "bench.txt", benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := writeBaseline(path, samples, 0.20); err != nil {
		t.Fatal(err)
	}
	base, err := readBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if base.DefaultThreshold != 0.20 || len(base.Benchmarks) != 3 {
		t.Fatalf("baseline %+v, want 3 benchmarks at 0.20", base)
	}
	// A freshly written baseline must pass against its own run.
	if err := compare(base, samples); err != nil {
		t.Fatalf("self-comparison failed: %v", err)
	}
}
