package main

import (
	"os"
	"path/filepath"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: rqm
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkStreamWriter/workers=1-8         	       1	  53169023 ns/op	 133.12 MB/s	29797144 B/op	   10052 allocs/op
BenchmarkStreamWriter/workers=1-8         	       1	  51000000 ns/op	 140.00 MB/s	29797144 B/op	   10052 allocs/op
BenchmarkStreamWriter/workers=4-8         	       1	  62896936 ns/op	 112.53 MB/s	29788816 B/op	   10052 allocs/op
BenchmarkEngineBatch4-8                   	       2	  11000000 ns/op
BenchmarkEngineBatch4-8                   	       2	  10500000 ns/op
PASS
ok  	rqm	13.804s
`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseBenchBestOf(t *testing.T) {
	samples, err := parseBench(writeTemp(t, "bench.txt", benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	sw := samples["BenchmarkStreamWriter/workers=1"]
	if sw == nil || sw.count != 2 {
		t.Fatalf("workers=1 sample %+v, want 2 observations", sw)
	}
	if sw.bestNs != 51000000 || sw.bestMBPS != 140 {
		t.Fatalf("best-of reduction got ns=%v mbps=%v, want 51000000/140", sw.bestNs, sw.bestMBPS)
	}
	eb := samples["BenchmarkEngineBatch4"]
	if eb == nil || eb.bestNs != 10500000 || eb.bestMBPS != 0 {
		t.Fatalf("EngineBatch4 sample %+v, want ns=10500000 no MB/s", eb)
	}
}

func TestCompareThresholds(t *testing.T) {
	samples, err := parseBench(writeTemp(t, "bench.txt", benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	pass := &Baseline{
		DefaultThreshold: 0.20,
		Benchmarks: map[string]Entry{
			// 140 MB/s observed vs 160 baseline: -12.5%, within 20%.
			"BenchmarkStreamWriter/workers=1": {NsPerOp: 45000000, MBPerS: 160},
			// 10.5ms observed vs 9ms baseline: +16.7%, within 20%.
			"BenchmarkEngineBatch4": {NsPerOp: 9000000},
		},
	}
	if err := compare(pass, samples); err != nil {
		t.Fatalf("within-threshold run failed: %v", err)
	}

	failTooSlow := &Baseline{
		DefaultThreshold: 0.20,
		Benchmarks: map[string]Entry{
			// 140 MB/s observed vs 200 baseline: -30%, beyond 20%.
			"BenchmarkStreamWriter/workers=1": {NsPerOp: 40000000, MBPerS: 200},
		},
	}
	if err := compare(failTooSlow, samples); err == nil {
		t.Fatal("30% throughput regression passed the 20% gate")
	}

	perBench := &Baseline{
		DefaultThreshold: 0.20,
		Benchmarks: map[string]Entry{
			// Same -30% regression, but this benchmark allows 40%.
			"BenchmarkStreamWriter/workers=1": {NsPerOp: 40000000, MBPerS: 200, Threshold: 0.40},
		},
	}
	if err := compare(perBench, samples); err != nil {
		t.Fatalf("per-benchmark threshold override not honored: %v", err)
	}

	missing := &Baseline{
		DefaultThreshold: 0.20,
		Benchmarks:       map[string]Entry{"BenchmarkGone": {NsPerOp: 1}},
	}
	if err := compare(missing, samples); err == nil {
		t.Fatal("baseline benchmark missing from the run passed the gate")
	}
}

func TestUpdateRoundTrip(t *testing.T) {
	samples, err := parseBench(writeTemp(t, "bench.txt", benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := writeBaseline(path, samples, 0.20); err != nil {
		t.Fatal(err)
	}
	base, err := readBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if base.DefaultThreshold != 0.20 || len(base.Benchmarks) != 3 {
		t.Fatalf("baseline %+v, want 3 benchmarks at 0.20", base)
	}
	// A freshly written baseline must pass against its own run.
	if err := compare(base, samples); err != nil {
		t.Fatalf("self-comparison failed: %v", err)
	}
}
