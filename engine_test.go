package rqm_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"rqm"
)

func batchFields(t testing.TB, n int) []*rqm.Field {
	t.Helper()
	ds, err := rqm.GenerateDataset("rtm", 42, rqm.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	fields := ds.Fields
	for len(fields) < n {
		fields = append(fields, fields...)
	}
	return fields[:n]
}

func TestEngineOptionValidation(t *testing.T) {
	if _, err := rqm.NewEngine(rqm.WithCodecName("no-such-codec")); !errors.Is(err, rqm.ErrUnknownCodec) {
		t.Fatalf("unknown codec: %v", err)
	}
	if _, err := rqm.NewEngine(rqm.WithErrorBound(-1)); err == nil {
		t.Fatal("negative bound accepted")
	}
	if _, err := rqm.NewEngine(rqm.WithConcurrency(0)); err == nil {
		t.Fatal("zero concurrency accepted")
	}
	if _, err := rqm.NewEngine(rqm.WithCodec(nil)); err == nil {
		t.Fatal("nil codec accepted")
	}
	eng, err := rqm.NewEngine(rqm.WithConcurrency(3))
	if err != nil {
		t.Fatal(err)
	}
	if eng.Concurrency() != 3 {
		t.Fatalf("concurrency = %d", eng.Concurrency())
	}
	if eng.Codec().Name() != rqm.CodecPredictionName {
		t.Fatalf("default codec = %s", eng.Codec().Name())
	}
}

func TestEngineBatchRoundTrip(t *testing.T) {
	fields := batchFields(t, 6)
	for _, codecName := range rqm.CodecNames() {
		t.Run(codecName, func(t *testing.T) {
			eng, err := rqm.NewEngine(
				rqm.WithCodecName(codecName),
				rqm.WithMode(rqm.REL),
				rqm.WithErrorBound(1e-3),
				rqm.WithConcurrency(4),
			)
			if err != nil {
				t.Fatal(err)
			}
			results, err := eng.CompressBatch(context.Background(), fields)
			if err != nil {
				t.Fatal(err)
			}
			blobs := make([][]byte, len(results))
			for i, r := range results {
				if r == nil {
					t.Fatalf("result %d is nil", i)
				}
				if r.Stats.Codec != codecName {
					t.Fatalf("result %d codec = %q", i, r.Stats.Codec)
				}
				blobs[i] = r.Bytes
			}
			back, err := eng.DecompressBatch(context.Background(), blobs)
			if err != nil {
				t.Fatal(err)
			}
			for i, b := range back {
				lo, hi := fields[i].ValueRange()
				if err := rqm.VerifyErrorBound(fields[i], b, rqm.ABS, 1e-3*(hi-lo)); err != nil {
					t.Fatalf("field %d: %v", i, err)
				}
			}
		})
	}
}

func TestEngineBatchEmptyAndError(t *testing.T) {
	eng, err := rqm.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	if res, err := eng.CompressBatch(context.Background(), nil); err != nil || len(res) != 0 {
		t.Fatalf("empty batch: %v, %d results", err, len(res))
	}
	fields := batchFields(t, 3)
	fields[1] = nil
	if _, err := eng.CompressBatch(context.Background(), fields); err == nil {
		t.Fatal("nil field accepted")
	} else if !strings.Contains(err.Error(), "field 1") {
		t.Fatalf("error does not locate the failing item: %v", err)
	}
	// A bad blob in a decompress batch surfaces the typed error.
	good, err := eng.Compress(fields[0])
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.DecompressBatch(context.Background(), [][]byte{good.Bytes, []byte("bogus!!")})
	if !errors.Is(err, rqm.ErrBadMagic) {
		t.Fatalf("bad blob error: %v", err)
	}
}

func TestEngineBatchHonorsCancellation(t *testing.T) {
	eng, err := rqm.NewEngine(rqm.WithConcurrency(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = eng.CompressBatch(ctx, batchFields(t, 4))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled batch: %v", err)
	}
}

func TestEngineMixedCodecDecompressBatch(t *testing.T) {
	// One engine decompresses containers produced by different codecs: the
	// envelope routes each blob independently.
	f := batchFields(t, 1)[0]
	lo, hi := f.ValueRange()
	eb := 1e-3 * (hi - lo)
	var blobs [][]byte
	for _, name := range rqm.CodecNames() {
		eng, err := rqm.NewEngine(rqm.WithCodecName(name), rqm.WithMode(rqm.ABS), rqm.WithErrorBound(eb))
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Compress(f)
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, res.Bytes)
	}
	// Legacy containers ride in the same batch.
	legacy, err := rqm.Compress(f, rqm.CompressOptions{Predictor: rqm.Lorenzo, Mode: rqm.ABS, ErrorBound: eb})
	if err != nil {
		t.Fatal(err)
	}
	blobs = append(blobs, legacy.Bytes)

	eng, err := rqm.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	back, err := eng.DecompressBatch(context.Background(), blobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range back {
		if err := rqm.VerifyErrorBound(f, b, rqm.ABS, eb); err != nil {
			t.Fatalf("blob %d: %v", i, err)
		}
	}
}

// wrappedCodec is an external codec (unreserved ID, not registered) that
// reuses the prediction backend's payload format.
type wrappedCodec struct{ inner rqm.Codec }

func (w wrappedCodec) Name() string    { return "wrapped" }
func (w wrappedCodec) ID() rqm.CodecID { return rqm.CodecFirstExternalID + 13 }
func (w wrappedCodec) Compress(f *rqm.Field, o rqm.CodecOptions) ([]byte, error) {
	return w.inner.Compress(f, o)
}
func (w wrappedCodec) Decompress(p []byte) (*rqm.Field, error) { return w.inner.Decompress(p) }
func (w wrappedCodec) Profile(f *rqm.Field, co rqm.CodecOptions, mo rqm.ModelOptions) (*rqm.Profile, error) {
	return w.inner.Profile(f, co, mo)
}

// TestEngineDecompressesOwnUnregisteredCodec: an engine built around a codec
// that is not in the registry still round-trips its own containers; only the
// registry-routed package Decompress refuses them.
func TestEngineDecompressesOwnUnregisteredCodec(t *testing.T) {
	pred, err := rqm.CodecByName(rqm.CodecPredictionName)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := rqm.NewEngine(rqm.WithCodec(wrappedCodec{pred}), rqm.WithMode(rqm.REL), rqm.WithErrorBound(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	f := batchFields(t, 1)[0]
	res, err := eng.Compress(f)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Codec != "wrapped" {
		t.Fatalf("stats codec = %q", res.Stats.Codec)
	}
	back, err := eng.Decompress(res.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := f.ValueRange()
	if err := rqm.VerifyErrorBound(f, back, rqm.ABS, 1e-3*(hi-lo)); err != nil {
		t.Fatal(err)
	}
	if _, err := rqm.Decompress(res.Bytes); !errors.Is(err, rqm.ErrUnknownCodec) {
		t.Fatalf("registry-routed decompress of unregistered codec: %v", err)
	}
}

func TestEngineSelectCodecAndBudget(t *testing.T) {
	f := batchFields(t, 1)[0]
	eng, err := rqm.NewEngine(rqm.WithModelOptions(rqm.ModelOptions{SampleRate: 0.2}))
	if err != nil {
		t.Fatal(err)
	}
	choices, err := eng.SelectCodec(f, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(choices) != len(rqm.Codecs()) {
		t.Fatalf("choices = %d, want %d", len(choices), len(rqm.Codecs()))
	}
	for i := 1; i < len(choices); i++ {
		if choices[i].Estimate.TotalBitRate < choices[i-1].Estimate.TotalBitRate-1e-9 {
			t.Fatal("choices not ranked by modeled bit-rate")
		}
	}

	plan, err := eng.CompressToBudget(f, nil, f.OriginalBytes()/8, 0.2, true)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Result.Stats.CompressedBytes > plan.BudgetBytes {
		t.Fatal("budget plan overflowed in strict mode")
	}
	if _, err := rqm.Decompress(plan.Result.Bytes); err != nil {
		t.Fatal(err)
	}
}
