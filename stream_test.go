package rqm_test

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"

	"rqm"
)

// streamField builds the shared input for streaming tests.
func streamField(t testing.TB) *rqm.Field {
	t.Helper()
	f, err := rqm.GenerateField("nyx/temperature", 11, rqm.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestStreamRoundTripAllCodecs is the acceptance gate for the streaming
// subsystem: for every registered codec, a stream-written container must
// decode identically (bit for bit) through the concurrent Reader and the
// whole-buffer rqm.Decompress, and the per-chunk error bound must hold.
func TestStreamRoundTripAllCodecs(t *testing.T) {
	f := streamField(t)
	lo, hi := f.ValueRange()
	eb := 1e-3 * (hi - lo)

	for _, c := range rqm.Codecs() {
		t.Run(c.Name(), func(t *testing.T) {
			var buf bytes.Buffer
			w, err := rqm.NewWriter(&buf,
				rqm.WithStreamCodec(c),
				rqm.WithStreamShape(f.Prec, f.Dims...),
				rqm.WithStreamFieldName(f.Name),
				rqm.WithChunkSize(2048),
				rqm.WithStreamWorkers(4),
				rqm.WithStreamCompression(rqm.CodecOptions{Mode: rqm.ABS, ErrorBound: eb}))
			if err != nil {
				t.Fatal(err)
			}
			if err := w.WriteValues(f.Data); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}

			r, err := rqm.NewReader(bytes.NewReader(buf.Bytes()), rqm.WithStreamReaderWorkers(4))
			if err != nil {
				t.Fatal(err)
			}
			streamed, err := r.ReadAll()
			if err != nil {
				t.Fatal(err)
			}
			whole, err := rqm.Decompress(buf.Bytes())
			if err != nil {
				t.Fatal(err)
			}
			if streamed.Len() != f.Len() || whole.Len() != f.Len() {
				t.Fatalf("lengths: streamed %d, whole %d, want %d", streamed.Len(), whole.Len(), f.Len())
			}
			for i := range whole.Data {
				if math.Float64bits(streamed.Data[i]) != math.Float64bits(whole.Data[i]) {
					t.Fatalf("value %d: streaming decode %x, whole-buffer decode %x",
						i, math.Float64bits(streamed.Data[i]), math.Float64bits(whole.Data[i]))
				}
			}
			if err := rqm.VerifyErrorBound(f, streamed, rqm.ABS, eb*(1+1e-12)); err != nil {
				t.Fatal(err)
			}
			if streamed.Name != f.Name || streamed.Rank() != f.Rank() {
				t.Fatalf("metadata lost: %q %v, want %q %v", streamed.Name, streamed.Dims, f.Name, f.Dims)
			}
		})
	}
}

// TestStreamRandomAccess decodes one chunk of a container through the
// public index API without touching the rest.
func TestStreamRandomAccess(t *testing.T) {
	f := streamField(t)
	lo, hi := f.ValueRange()
	var buf bytes.Buffer
	w, err := rqm.NewWriter(&buf,
		rqm.WithStreamShape(f.Prec, f.Dims...),
		rqm.WithStreamValueRange(lo, hi),
		rqm.WithChunkSize(2048))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteValues(f.Data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	idx, err := rqm.ReadStreamIndex(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.Entries) != w.Stats().Chunks || idx.TotalValues != int64(f.Len()) {
		t.Fatalf("index %d entries / %d values, want %d / %d",
			len(idx.Entries), idx.TotalValues, w.Stats().Chunks, f.Len())
	}
	whole, err := rqm.Decompress(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	// Chunk 3 in isolation must match the same slice of the full decode.
	e := idx.Entries[3]
	vals, err := rqm.ReadStreamChunk(bytes.NewReader(buf.Bytes()), e)
	if err != nil {
		t.Fatal(err)
	}
	start := 0
	for _, p := range idx.Entries[:3] {
		start += p.Values
	}
	for i, v := range vals {
		if math.Float64bits(v) != math.Float64bits(whole.Data[start+i]) {
			t.Fatalf("random-access value %d differs from sequential decode", i)
		}
	}
}

// TestEngineStreamWriter checks the engine-configured streaming path and
// that Engine.Decompress routes chunked containers.
func TestEngineStreamWriter(t *testing.T) {
	f := streamField(t)
	eng, err := rqm.NewEngine(rqm.WithMode(rqm.REL), rqm.WithErrorBound(1e-3), rqm.WithConcurrency(3))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := eng.NewFieldStreamWriter(&buf, f, rqm.WithChunkSize(4096))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteField(f); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	back, err := eng.Decompress(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != f.Len() {
		t.Fatalf("engine decode %d values, want %d", back.Len(), f.Len())
	}
	// A REL-mode engine cannot stream without a resolved range: the raw
	// NewStreamWriter path must fail explicitly rather than guess.
	if _, err := eng.NewStreamWriter(io.Discard); !errors.Is(err, rqm.ErrStreamNeedsValueRange) {
		t.Fatalf("REL NewStreamWriter without range: %v, want ErrStreamNeedsValueRange", err)
	}
}

// unregisteredCodec wraps a built-in under an unregistered wire ID.
type unregisteredCodec struct{ rqm.Codec }

func (u unregisteredCodec) ID() rqm.CodecID { return 99 }
func (u unregisteredCodec) Name() string    { return "unregistered-test" }

// TestEngineStreamOwnCodecFallback checks the engine's own-codec guarantee
// extends to chunked streams: containers written by an engine's unregistered
// codec decode through that engine, while registry-only routing fails typed.
func TestEngineStreamOwnCodecFallback(t *testing.T) {
	base, err := rqm.CodecByName(rqm.CodecPredictionName)
	if err != nil {
		t.Fatal(err)
	}
	custom := unregisteredCodec{base}
	eng, err := rqm.NewEngine(rqm.WithCodec(custom), rqm.WithMode(rqm.REL), rqm.WithErrorBound(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	f := streamField(t)
	var buf bytes.Buffer
	w, err := eng.NewFieldStreamWriter(&buf, f, rqm.WithChunkSize(4096))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteField(f); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	back, err := eng.Decompress(buf.Bytes())
	if err != nil {
		t.Fatalf("engine could not decode its own codec's stream: %v", err)
	}
	if back.Len() != f.Len() {
		t.Fatalf("decoded %d values, want %d", back.Len(), f.Len())
	}
	if _, err := rqm.Decompress(buf.Bytes()); !errors.Is(err, rqm.ErrUnknownCodec) {
		t.Fatalf("registry routing of an unregistered codec: %v, want ErrUnknownCodec", err)
	}
}

// TestStreamAdaptivePSNRTarget checks the headline use case end to end:
// the model-driven per-chunk bounds deliver the PSNR target (within the
// model's accuracy margin) without a single trial compression.
func TestStreamAdaptivePSNRTarget(t *testing.T) {
	f := streamField(t)
	const target = 60.0
	var buf bytes.Buffer
	w, err := rqm.NewWriter(&buf,
		rqm.WithStreamShape(f.Prec, f.Dims...),
		rqm.WithChunkSize(4096),
		rqm.WithAdaptiveBound(rqm.AdaptiveBound{TargetPSNR: target}),
		rqm.WithStreamModel(rqm.ModelOptions{SampleRate: 0.1, Seed: 3}))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteValues(f.Data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	back, err := rqm.Decompress(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	psnr, err := rqm.PSNR(f, back)
	if err != nil {
		t.Fatal(err)
	}
	if psnr < target-3 {
		t.Fatalf("adaptive stream PSNR %.2f dB misses the %g dB target", psnr, target)
	}
}

// TestInspectChunkedContainer checks Inspect describes chunked containers
// without decoding them.
func TestInspectChunkedContainer(t *testing.T) {
	f := streamField(t)
	lo, hi := f.ValueRange()
	var buf bytes.Buffer
	w, err := rqm.NewWriter(&buf,
		rqm.WithStreamShape(f.Prec, f.Dims...),
		rqm.WithStreamFieldName(f.Name),
		rqm.WithStreamValueRange(lo, hi),
		rqm.WithChunkSize(4096))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteValues(f.Data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	info, err := rqm.Inspect(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !info.Chunked || info.Version != 2 {
		t.Fatalf("info %+v, want chunked v2", info)
	}
	if info.Chunks != w.Stats().Chunks || info.TotalValues != int64(f.Len()) {
		t.Fatalf("info counts %d/%d, want %d/%d", info.Chunks, info.TotalValues, w.Stats().Chunks, f.Len())
	}
	if info.FieldName != f.Name || info.CodecName != rqm.CodecPredictionName {
		t.Fatalf("info identity %q/%q, want %q/%q", info.FieldName, info.CodecName, f.Name, rqm.CodecPredictionName)
	}
}

// TestDecompressRejectsTruncatedChunked extends the typed-error contract to
// chunked containers at the public surface.
func TestDecompressRejectsTruncatedChunked(t *testing.T) {
	f := streamField(t)
	lo, hi := f.ValueRange()
	var buf bytes.Buffer
	w, err := rqm.NewWriter(&buf, rqm.WithStreamShape(f.Prec, f.Dims...),
		rqm.WithStreamValueRange(lo, hi), rqm.WithChunkSize(2048))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteValues(f.Data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	cases := []struct {
		name string
		blob []byte
		want error
	}{
		{"header only", data[:20], rqm.ErrTruncated},
		{"mid-chunk", data[:len(data)/2], rqm.ErrTruncated},
		{"missing footer", data[:len(data)-5], rqm.ErrTruncated},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := rqm.Decompress(tc.blob); !errors.Is(err, tc.want) {
				t.Fatalf("Decompress: %v, want %v", err, tc.want)
			}
			// The streaming reader must agree (the error may surface at
			// construction or at first read).
			r, err := rqm.NewReader(bytes.NewReader(tc.blob))
			if err == nil {
				for {
					if _, err = r.NextChunk(); err != nil {
						break
					}
				}
				if err == io.EOF {
					t.Fatal("streaming reader accepted a truncated container")
				}
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("NewReader path: %v, want %v", err, tc.want)
			}
		})
	}
}

// TestStreamRELMatchesWholeBuffer is the acceptance test for the REL
// streaming semantics: streamed and whole-buffer REL compression of the same
// field must enforce the same maximum absolute error, resolved once from the
// global value range — even when individual chunks span wildly different
// local ranges (which the old chunk-local resolution turned into different
// per-chunk guarantees).
func TestStreamRELMatchesWholeBuffer(t *testing.T) {
	// Four chunk-sized regions with local ranges of ~2, ~1000, 0 (constant),
	// and 16: chunk-local REL resolution would have recorded four different
	// absolute bounds for the same user setting.
	const chunk = 2048
	vals := make([]float64, 4*chunk)
	for i := 0; i < chunk; i++ {
		x := float64(i)
		vals[i] = math.Sin(x / 40)
		vals[chunk+i] = 500 * math.Cos(x/60)
		vals[2*chunk+i] = 42
		vals[3*chunk+i] = float64(i % 17)
	}
	f, err := rqm.FieldFromData("rel-equivalence", rqm.Float64, vals, len(vals))
	if err != nil {
		t.Fatal(err)
	}
	const relEB = 1e-3
	lo, hi := f.ValueRange()
	wantAbs := relEB * (hi - lo)

	eng, err := rqm.NewEngine(rqm.WithMode(rqm.REL), rqm.WithErrorBound(relEB))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := eng.NewFieldStreamWriter(&buf, f, rqm.WithChunkSize(chunk))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteField(f); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Every chunk header records the stream-global absolute bound.
	idx, err := rqm.ReadStreamIndex(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.Entries) != 4 {
		t.Fatalf("wrote %d chunks, want 4", len(idx.Entries))
	}
	for i, e := range idx.Entries {
		if e.AbsBound != wantAbs {
			t.Fatalf("chunk %d bound %g, want the global %g", i, e.AbsBound, wantAbs)
		}
	}

	// Both reconstructions satisfy the same absolute bound...
	streamed, err := rqm.Decompress(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Compress(f)
	if err != nil {
		t.Fatal(err)
	}
	whole, err := eng.Decompress(res.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	maxErr := func(recon *rqm.Field) float64 {
		var m float64
		for i := range vals {
			if d := math.Abs(recon.Data[i] - vals[i]); d > m {
				m = d
			}
		}
		return m
	}
	slack := wantAbs * (1 + 1e-12)
	streamedErr, wholeErr := maxErr(streamed), maxErr(whole)
	if streamedErr > slack {
		t.Fatalf("streamed max error %g exceeds the global REL bound %g", streamedErr, wantAbs)
	}
	if wholeErr > slack {
		t.Fatalf("whole-buffer max error %g exceeds the global REL bound %g", wholeErr, wantAbs)
	}
	// ... and rqm.VerifyErrorBound agrees both enforce REL at the field level.
	if err := rqm.VerifyErrorBound(f, streamed, rqm.REL, relEB); err != nil {
		t.Fatalf("streamed REL verification: %v", err)
	}
	if err := rqm.VerifyErrorBound(f, whole, rqm.REL, relEB); err != nil {
		t.Fatalf("whole-buffer REL verification: %v", err)
	}
}
