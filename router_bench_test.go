package rqm_test

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"rqm"
	"rqm/internal/router"
	"rqm/internal/service"
	"rqm/internal/store"
)

// routerBenchSetup builds a 3-shard R=2 cluster with one stored dataset and
// returns the router front plus a direct URL to a shard holding the data —
// so the proxy hop's overhead can be read against the direct baseline.
func routerBenchSetup(b *testing.B) (routerURL, directURL string) {
	b.Helper()
	var shardURLs []string
	var shards []*httptest.Server
	for i := 0; i < 3; i++ {
		st, err := store.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		svc, err := service.New(service.Config{Store: st})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(svc)
		b.Cleanup(ts.Close)
		shards = append(shards, ts)
		shardURLs = append(shardURLs, ts.URL)
	}
	rt, err := router.New(router.Config{Shards: shardURLs, Replicas: 2, ProbeInterval: -1})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(rt.Close)
	front := httptest.NewServer(rt)
	b.Cleanup(front.Close)

	g, err := rqm.GenerateField("nyx/temperature", 3, rqm.ScaleSmall)
	if err != nil {
		b.Fatal(err)
	}
	f, err := rqm.FieldFromData("bench", rqm.Float64, g.Data, g.Dims...)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	resp, err := http.Post(front.URL+"/v1/datasets/bench?mode=abs&eb=0.01&chunk=4096",
		"application/octet-stream", &buf)
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		b.Fatalf("seed put: status %d", resp.StatusCode)
	}
	// Find a shard that holds a replica for the direct-hit baseline.
	for _, ts := range shards {
		r, err := http.Get(ts.URL + "/v1/datasets/bench?manifest=1")
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode == http.StatusOK {
			return front.URL, ts.URL
		}
	}
	b.Fatal("no shard holds the seeded dataset")
	return "", ""
}

func benchGet(b *testing.B, url string) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Get(url)
		if err != nil {
			b.Fatal(err)
		}
		n, _ := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || n == 0 {
			b.Fatalf("status %d, %d bytes", resp.StatusCode, n)
		}
	}
}

// BenchmarkRouterProxyGet measures a dataset read through the cluster tier:
// ring lookup, health check, one proxied shard round-trip, and the response
// relay. Compare against BenchmarkRouterDirectGet for the hop's overhead.
func BenchmarkRouterProxyGet(b *testing.B) {
	routerURL, _ := routerBenchSetup(b)
	benchGet(b, routerURL+"/v1/datasets/bench")
}

// BenchmarkRouterDirectGet is the same read straight off a shard — the
// baseline the proxy hop is judged against.
func BenchmarkRouterDirectGet(b *testing.B) {
	_, directURL := routerBenchSetup(b)
	benchGet(b, directURL+"/v1/datasets/bench")
}
