package main

import (
	"os"
	"path/filepath"
	"testing"

	"rqm"
)

// TestScanValueRange checks the streaming pre-pass finds the same global
// range an in-memory scan does, in both precisions.
func TestScanValueRange(t *testing.T) {
	for _, prec := range []rqm.Precision{rqm.Float32, rqm.Float64} {
		vals := []float64{3, -7.5, 0.25, 1024, -0.125, 511.5}
		f, err := rqm.FieldFromData("scan", prec, vals, len(vals))
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "scan.rqmf")
		fh, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteTo(fh); err != nil {
			t.Fatal(err)
		}
		if err := fh.Close(); err != nil {
			t.Fatal(err)
		}
		lo, hi := scanValueRange(path)
		if lo != -7.5 || hi != 1024 {
			t.Fatalf("prec %d: scanned range [%g, %g], want [-7.5, 1024]", prec.Bits(), lo, hi)
		}
	}
}
