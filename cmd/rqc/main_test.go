package main

import (
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"rqm"
	"rqm/internal/grid"
	"rqm/internal/service"
	"rqm/internal/store"
)

// TestScanValueRange checks the streaming pre-pass finds the same global
// range an in-memory scan does, in both precisions.
func TestScanValueRange(t *testing.T) {
	for _, prec := range []rqm.Precision{rqm.Float32, rqm.Float64} {
		vals := []float64{3, -7.5, 0.25, 1024, -0.125, 511.5}
		f, err := rqm.FieldFromData("scan", prec, vals, len(vals))
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "scan.rqmf")
		fh, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteTo(fh); err != nil {
			t.Fatal(err)
		}
		if err := fh.Close(); err != nil {
			t.Fatal(err)
		}
		lo, hi := scanValueRange(path)
		if lo != -7.5 || hi != 1024 {
			t.Fatalf("prec %d: scanned range [%g, %g], want [-7.5, 1024]", prec.Bits(), lo, hi)
		}
	}
}

// TestDatasetSubcommands drives put/get/ls/rm/recompact end to end against
// an in-process rqserved instance with a store. The subcommands fatal (exit
// the test binary) on any error, so reaching the final assertion is itself
// the pass condition; file contents are verified on top.
func TestDatasetSubcommands(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	svc, err := service.New(service.Config{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc)
	t.Cleanup(ts.Close)

	dir := t.TempDir()
	g, err := rqm.GenerateField("nyx/temperature", 11, rqm.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	f, err := rqm.FieldFromData("cli", rqm.Float64, g.Data, g.Dims...)
	if err != nil {
		t.Fatal(err)
	}
	in := filepath.Join(dir, "in.rqmf")
	fh, err := os.Create(in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteTo(fh); err != nil {
		t.Fatal(err)
	}
	if err := fh.Close(); err != nil {
		t.Fatal(err)
	}

	cmdPut([]string{"-remote", ts.URL, "-name", "cli", "-in", in, "-mode", "rel", "-eb", "1e-3", "-chunk", "1024"})
	cmdLs([]string{"-remote", ts.URL})

	out := filepath.Join(dir, "out.rqmf")
	cmdGet([]string{"-remote", ts.URL, "-name", "cli", "-out", out})
	oh, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	back, err := grid.ReadFrom(oh)
	oh.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := rqm.VerifyErrorBound(f, back, rqm.REL, 1e-3*(1+1e-12)); err != nil {
		t.Fatal(err)
	}

	slice := filepath.Join(dir, "slice.rqmf")
	cmdGet([]string{"-remote", ts.URL, "-name", "cli", "-out", slice, "-off", "100", "-len", "64"})
	sh, err := os.Open(slice)
	if err != nil {
		t.Fatal(err)
	}
	sf, err := grid.ReadFrom(sh)
	sh.Close()
	if err != nil {
		t.Fatal(err)
	}
	if sf.Len() != 64 || sf.Data[0] != back.Data[100] {
		t.Fatalf("slice: %d values, first %v (want %v)", sf.Len(), sf.Data[0], back.Data[100])
	}

	// Recompact to an already-met ratio: must report a skip, not rewrite.
	m, err := st.Manifest("cli")
	if err != nil {
		t.Fatal(err)
	}
	writes := st.Writes()
	cmdRecompact([]string{"-remote", ts.URL, "-name", "cli", "-target-ratio", fmt.Sprint(m.Ratio / 2)})
	if st.Writes() != writes {
		t.Fatal("met-target recompact rewrote the container")
	}

	cmdRm([]string{"-remote", ts.URL, "-name", "cli"})
	if _, err := st.Manifest("cli"); err == nil {
		t.Fatal("dataset survived rm")
	}
}

// TestCompressFlagValidation pins the up-front usage errors: contradictory
// or nonsensical flag combinations must fail with a usage error before any
// file or network I/O (the input paths here do not exist).
func TestCompressFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"both targets", []string{"-in", "x.rqmf", "-out", "y.rqz", "-target-ratio", "8", "-target-psnr", "60"}},
		{"zero chunk", []string{"-in", "x.rqmf", "-out", "y.rqz", "-chunk", "0"}},
		{"negative chunk", []string{"-in", "x.rqmf", "-out", "y.rqz", "-chunk", "-5"}},
		{"adaptive-space without target", []string{"-in", "x.rqmf", "-out", "y.rqz", "-adaptive-space"}},
	}
	defer func() { exit = os.Exit }()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code := -1
			exit = func(c int) {
				code = c
				panic("rqc: exit")
			}
			func() {
				defer func() { _ = recover() }()
				cmdCompress(tc.args)
			}()
			if code != 1 {
				t.Fatalf("args %v: exit status %d, want usage error", tc.args, code)
			}
		})
	}
}
