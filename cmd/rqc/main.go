// Command rqc is the CLI front end of the prediction-based lossy
// compressor.
//
// Usage:
//
//	rqc compress   -in field.rqmf -out field.rqz -predictor lorenzo -mode rel -eb 1e-3 -lossless flate
//	rqc decompress -in field.rqz  -out field.rqmf
//	rqc inspect    -in field.rqz
//
// compress prints the run statistics; with -verify it also decompresses and
// checks the error bound end to end.
package main

import (
	"flag"
	"fmt"
	"os"

	"rqm"
	"rqm/internal/compressor"
	"rqm/internal/grid"
	"rqm/internal/predictor"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "compress":
		cmdCompress(os.Args[2:])
	case "decompress":
		cmdDecompress(os.Args[2:])
	case "inspect":
		cmdInspect(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: rqc compress|decompress|inspect [flags]")
	os.Exit(2)
}

func cmdCompress(args []string) {
	fs := flag.NewFlagSet("compress", flag.ExitOnError)
	var (
		in       = fs.String("in", "", "input .rqmf field file")
		out      = fs.String("out", "", "output compressed file")
		codec    = fs.String("codec", "prediction", "prediction|transform")
		predName = fs.String("predictor", "lorenzo", "lorenzo|lorenzo2|interpolation|interpolation-cubic|regression")
		mode     = fs.String("mode", "rel", "abs|rel|pwrel")
		eb       = fs.Float64("eb", 1e-3, "error bound (mode semantics)")
		lossless = fs.String("lossless", "flate", "none|rle|lz77|flate")
		verify   = fs.Bool("verify", false, "decompress and verify the bound")
	)
	must(fs.Parse(args))
	if *in == "" || *out == "" {
		fatal(fmt.Errorf("compress: -in and -out are required"))
	}
	f := readField(*in)
	if *codec == "transform" {
		compressTransform(f, *in, *out, *mode, *eb, *verify)
		return
	}
	kind, err := predictor.ParseKind(*predName)
	must(err)
	m, err := compressor.ParseErrorMode(*mode)
	must(err)
	ll, err := parseLossless(*lossless)
	must(err)
	res, err := rqm.Compress(f, rqm.CompressOptions{
		Predictor: kind, Mode: m, ErrorBound: *eb, Lossless: ll,
	})
	must(err)
	must(os.WriteFile(*out, res.Bytes, 0o644))
	st := res.Stats
	fmt.Printf("compressed %s: %d -> %d bytes (ratio %.2fx, %.3f bits/value)\n",
		*in, st.OriginalBytes, st.CompressedBytes, st.Ratio, st.BitRate)
	fmt.Printf("  p0=%.4f unpredictable=%d huffman=%.3f bits/value\n",
		st.P0, st.Unpredictable, st.BitRateHuffman)
	fmt.Printf("  predict=%v encode=%v lossless=%v\n", st.PredictTime, st.EncodeTime, st.LosslessTime)
	if *verify {
		dec, err := rqm.Decompress(res.Bytes)
		must(err)
		must(rqm.VerifyErrorBound(f, dec, m, *eb))
		psnr, err := rqm.PSNR(f, dec)
		must(err)
		fmt.Printf("  verified: bound holds, PSNR %.2f dB\n", psnr)
	}
}

// compressTransform handles the transform-codec path (absolute and
// value-range-relative bounds only).
func compressTransform(f *grid.Field, in, out, mode string, eb float64, verify bool) {
	abs := eb
	switch mode {
	case "abs":
	case "rel":
		lo, hi := f.ValueRange()
		abs = eb * (hi - lo)
	default:
		fatal(fmt.Errorf("compress: transform codec supports -mode abs|rel, got %q", mode))
	}
	res, err := rqm.TransformCompress(f, rqm.TransformOptions{ErrorBound: abs})
	must(err)
	must(os.WriteFile(out, res.Bytes, 0o644))
	st := res.Stats
	fmt.Printf("compressed %s (transform): %d -> %d bytes (ratio %.2fx, %.3f bits/value)\n",
		in, st.OriginalBytes, st.CompressedBytes, st.Ratio, st.BitRate)
	if verify {
		dec, err := rqm.TransformDecompress(res.Bytes)
		must(err)
		must(rqm.VerifyErrorBound(f, dec, rqm.ABS, abs))
		psnr, err := rqm.PSNR(f, dec)
		must(err)
		fmt.Printf("  verified: bound holds, PSNR %.2f dB\n", psnr)
	}
}

func cmdDecompress(args []string) {
	fs := flag.NewFlagSet("decompress", flag.ExitOnError)
	var (
		in    = fs.String("in", "", "input compressed file")
		out   = fs.String("out", "", "output .rqmf field file")
		codec = fs.String("codec", "prediction", "prediction|transform")
	)
	must(fs.Parse(args))
	if *in == "" || *out == "" {
		fatal(fmt.Errorf("decompress: -in and -out are required"))
	}
	blob, err := os.ReadFile(*in)
	must(err)
	var f *rqm.Field
	if *codec == "transform" {
		f, err = rqm.TransformDecompress(blob)
	} else {
		f, err = rqm.Decompress(blob)
	}
	must(err)
	dst, err := os.Create(*out)
	must(err)
	_, err = f.WriteTo(dst)
	if cerr := dst.Close(); err == nil {
		err = cerr
	}
	must(err)
	fmt.Printf("decompressed %s -> %s (field %q, dims %v)\n", *in, *out, f.Name, f.Dims)
}

func cmdInspect(args []string) {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	in := fs.String("in", "", "compressed file")
	must(fs.Parse(args))
	if *in == "" {
		fatal(fmt.Errorf("inspect: -in is required"))
	}
	blob, err := os.ReadFile(*in)
	must(err)
	f, err := rqm.Decompress(blob)
	must(err)
	lo, hi := f.ValueRange()
	fmt.Printf("container: %d bytes\n", len(blob))
	fmt.Printf("field: %q dims=%v precision=float%d\n", f.Name, f.Dims, f.Prec.Bits())
	fmt.Printf("values: %d, range [%g, %g]\n", f.Len(), lo, hi)
	fmt.Printf("effective ratio vs original precision: %.2fx\n",
		float64(f.OriginalBytes())/float64(len(blob)))
}

func readField(path string) *grid.Field {
	in, err := os.Open(path)
	must(err)
	defer in.Close()
	f, err := grid.ReadFrom(in)
	must(err)
	if f.Name == "" {
		f.Name = path
	}
	return f
}

func parseLossless(s string) (rqm.LosslessKind, error) {
	switch s {
	case "none":
		return rqm.LosslessNone, nil
	case "rle":
		return rqm.LosslessRLE, nil
	case "lz77":
		return rqm.LosslessLZ77, nil
	case "flate":
		return rqm.LosslessFlate, nil
	}
	return 0, fmt.Errorf("unknown lossless backend %q", s)
}

func must(err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rqc:", err)
	os.Exit(1)
}
