// Command rqc is the CLI front end of the error-bounded compressor family.
// Codec selection goes through the registry, so every registered backend is
// reachable with -codec; output containers are self-describing, so
// decompress and inspect need no codec flag at all.
//
// Large inputs flow through the chunked streaming pipeline: compress
// switches to it automatically above -stream-threshold (or always with
// -stream), splitting the file into chunks compressed concurrently by
// -workers, so memory stays bounded however big the dataset is. With
// -target-ratio or -target-psnr the ratio-quality model picks each chunk's
// error bound adaptively to hit the global target; adding -adaptive-space
// also lets it plan the chunk geometry, splitting the field where variance
// is non-uniform and solving per region. decompress and inspect recognize
// chunked containers on their own.
//
// Usage:
//
//	rqc compress   -in field.rqmf -out field.rqz -codec prediction -predictor lorenzo -mode rel -eb 1e-3 -lossless flate
//	rqc compress   -in field.rqmf -out field.rqz -stream -workers 8 -chunk 262144
//	rqc compress   -in field.rqmf -out field.rqz -stream -target-psnr 60
//	rqc compress   -in field.rqmf -out field.rqz -target-psnr 60 -adaptive-space
//	rqc compress   -in field.rqmf -out field.rqz -remote http://localhost:8080
//	rqc decompress -in field.rqz  -out field.rqmf [-remote http://localhost:8080]
//	rqc inspect    -in field.rqz
//
// With -remote the CLI becomes a thin client of a rqserved instance: the
// field streams up, the container streams back, and all codec flags travel
// as request-scoped options.
//
// Against a rqserved instance started with -store-dir, the dataset
// subcommands manage the persistent archive:
//
//	rqc put       -remote URL -name nyx -in field.rqmf [-mode rel -eb 1e-3 -chunk N] [-exact]
//	rqc get       -remote URL -name nyx -out field.rqmf [-off 1000 -len 500] [-raw] [-exact]
//	rqc ls        -remote URL
//	rqc rm        -remote URL -name nyx
//	rqc recompact -remote URL -name nyx -target-ratio 40 | -target-psnr 60 [-adaptive-space]
//	rqc promote   -remote URL -name nyx -in field.rqmf
//	rqc demote    -remote URL -name nyx
//
// put profiles the field once server-side and stores the container with its
// cached ratio-quality profile; get -off/-len slice-reads only the covering
// chunks; recompact re-solves the cached model for the target and skips the
// rewrite when the model says it is already met.
//
// put -exact additionally stores a lossless residual layer, so get -exact
// (whole dataset or a slice) returns the original bit for bit. promote adds
// the layer to an existing lossy dataset (the body must be the true
// original — it is verified against the dataset's content hash); demote
// drops it, keeping the lossy base.
//
// compress prints the run statistics; with -verify it also decompresses and
// checks the error bound end to end.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
	"time"

	"rqm"
	"rqm/client"
	"rqm/internal/grid"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "compress":
		cmdCompress(os.Args[2:])
	case "decompress":
		cmdDecompress(os.Args[2:])
	case "inspect":
		cmdInspect(os.Args[2:])
	case "put":
		cmdPut(os.Args[2:])
	case "get":
		cmdGet(os.Args[2:])
	case "ls":
		cmdLs(os.Args[2:])
	case "rm":
		cmdRm(os.Args[2:])
	case "recompact":
		cmdRecompact(os.Args[2:])
	case "promote":
		cmdPromote(os.Args[2:])
	case "demote":
		cmdDemote(os.Args[2:])
	case "cluster":
		cmdCluster(os.Args[2:])
	case "rebalance":
		cmdRebalance(os.Args[2:])
	case "scrub":
		cmdScrub(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: rqc compress|decompress|inspect|put|get|ls|rm|recompact|promote|demote|scrub|cluster|rebalance [flags]")
	os.Exit(2)
}

func cmdCompress(args []string) {
	fs := flag.NewFlagSet("compress", flag.ExitOnError)
	codecNames := strings.Join(rqm.CodecNames(), "|")
	var (
		in        = fs.String("in", "", "input .rqmf field file")
		out       = fs.String("out", "", "output compressed file")
		codecName = fs.String("codec", rqm.CodecPredictionName, codecNames)
		predName  = fs.String("predictor", "lorenzo", "lorenzo|lorenzo2|interpolation|interpolation-cubic|regression")
		mode      = fs.String("mode", "rel", "abs|rel|pwrel")
		eb        = fs.Float64("eb", 1e-3, "error bound (mode semantics)")
		lossless  = fs.String("lossless", "flate", "none|rle|lz77|flate")
		verify    = fs.Bool("verify", false, "decompress and verify the bound")

		streaming   = fs.Bool("stream", false, "force the chunked streaming pipeline")
		threshold   = fs.Int64("stream-threshold", 64<<20, "stream files at least this many bytes (0 disables auto-streaming)")
		chunk       = fs.Int("chunk", 0, "chunk size in values (0 = default 256Ki)")
		workers     = fs.Int("workers", 0, "concurrent chunk compressors (0 = GOMAXPROCS)")
		targetRatio = fs.Float64("target-ratio", 0, "adapt per-chunk bounds to this compression ratio (streaming)")
		targetPSNR  = fs.Float64("target-psnr", 0, "adapt per-chunk bounds to this PSNR in dB (streaming)")
		sampleRate  = fs.Float64("sample", 0, "model sampling rate for adaptive bounds (0 = default)")
		adaptSpace  = fs.Bool("adaptive-space", false, "variance-guided spatial partitioning: split chunks where the field is non-uniform and solve the model per region (needs -target-ratio or -target-psnr; buffers the stream)")
		remote      = fs.String("remote", "", "route through a rqserved instance at this base URL")
	)
	must(fs.Parse(args))
	if *in == "" || *out == "" {
		fatal(fmt.Errorf("compress: -in and -out are required"))
	}
	// Reject contradictory or nonsensical flag combinations up front, before
	// any file or network I/O, so mistakes fail with a usage error instead of
	// a confusing mid-pipeline one.
	if *targetRatio > 0 && *targetPSNR > 0 {
		fatal(fmt.Errorf("compress: -target-ratio and -target-psnr are mutually exclusive; pick one target"))
	}
	chunkSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "chunk" {
			chunkSet = true
		}
	})
	if chunkSet && *chunk < 1 {
		fatal(fmt.Errorf("compress: -chunk must be at least 1 value (got %d); omit the flag for the default", *chunk))
	}
	adaptive := *targetRatio > 0 || *targetPSNR > 0
	if *adaptSpace && !adaptive {
		fatal(fmt.Errorf("compress: -adaptive-space needs a model target (-target-ratio or -target-psnr)"))
	}
	if *remote != "" {
		compressRemote(*remote, *in, *out, remoteParams{
			codec: *codecName, predictor: *predName, mode: *mode, eb: *eb, lossless: *lossless,
			stream: *streaming, threshold: *threshold, chunk: *chunk,
			targetRatio: *targetRatio, targetPSNR: *targetPSNR,
			sampleRate: *sampleRate, adaptiveSpace: *adaptSpace, verify: *verify,
		})
		return
	}

	kind, err := rqm.ParsePredictorKind(*predName)
	must(err)
	m, err := rqm.ParseErrorMode(*mode)
	must(err)
	ll, err := rqm.ParseLosslessKind(*lossless)
	must(err)
	copts := rqm.CodecOptions{
		Predictor: kind, Mode: m, ErrorBound: *eb, Lossless: ll,
	}

	useStream := *streaming || adaptive
	if !useStream && *threshold > 0 {
		if st, err := os.Stat(*in); err == nil && st.Size() >= *threshold {
			useStream = true
		}
	}
	if useStream {
		compressStream(*in, *out, *codecName, copts, streamParams{
			chunk: *chunk, workers: *workers,
			targetRatio: *targetRatio, targetPSNR: *targetPSNR,
			sampleRate: *sampleRate, adaptiveSpace: *adaptSpace, verify: *verify,
		})
		return
	}

	f := readField(*in)
	eng, err := rqm.NewEngine(
		rqm.WithCodecName(*codecName),
		rqm.WithPredictor(kind),
		rqm.WithMode(m),
		rqm.WithErrorBound(*eb),
		rqm.WithLossless(ll),
	)
	must(err)

	res, err := eng.Compress(f)
	must(err)
	must(os.WriteFile(*out, res.Bytes, 0o644))
	st := res.Stats
	fmt.Printf("compressed %s (%s): %d -> %d bytes (ratio %.2fx, %.3f bits/value) in %v\n",
		*in, st.Codec, st.OriginalBytes, st.CompressedBytes, st.Ratio, st.BitRate, st.EncodeTime)
	if *verify {
		dec, err := eng.Decompress(res.Bytes)
		must(err)
		must(rqm.VerifyErrorBound(f, dec, m, *eb))
		psnr, err := rqm.PSNR(f, dec)
		must(err)
		fmt.Printf("  verified: bound holds, PSNR %.2f dB\n", psnr)
	}
}

// streamParams carries the streaming-path knobs of cmdCompress.
type streamParams struct {
	chunk, workers          int
	targetRatio, targetPSNR float64
	sampleRate              float64
	adaptiveSpace           bool
	verify                  bool
}

// compressStream pipes a field file through the chunked pipeline: the
// sample section streams straight from disk into the writer, so memory
// stays O(workers × chunk) no matter the file size.
func compressStream(in, out, codecName string, copts rqm.CodecOptions, p streamParams) {
	src, err := os.Open(in)
	must(err)
	defer src.Close()
	prec, dims, err := grid.ReadHeader(src)
	must(err)

	opts := []rqm.StreamOption{
		rqm.WithStreamCodecName(codecName),
		rqm.WithStreamCompression(copts),
		rqm.WithStreamShape(prec, dims...),
		rqm.WithStreamFieldName(in),
	}
	adaptive := p.targetRatio > 0 || p.targetPSNR > 0
	if copts.Mode == rqm.REL && !adaptive {
		// A REL bound resolves against the whole field's value range, not
		// each chunk's; one extra O(1)-memory pass over the file pins it to
		// the same range whole-buffer compression would use.
		lo, hi := scanValueRange(in)
		opts = append(opts, rqm.WithStreamValueRange(lo, hi))
	}
	if p.chunk > 0 {
		opts = append(opts, rqm.WithChunkSize(p.chunk))
	}
	if p.workers > 0 {
		opts = append(opts, rqm.WithStreamWorkers(p.workers))
	}
	if adaptive {
		opts = append(opts,
			rqm.WithAdaptiveBound(rqm.AdaptiveBound{TargetRatio: p.targetRatio, TargetPSNR: p.targetPSNR}),
			rqm.WithStreamModel(rqm.ModelOptions{SampleRate: p.sampleRate}))
	}
	if p.adaptiveSpace {
		opts = append(opts, rqm.WithPartitioner(rqm.VarianceQuadtree{}))
	}

	dst, err := os.Create(out)
	must(err)
	bw := bufio.NewWriterSize(dst, 1<<20)
	w, err := rqm.NewWriter(bw, opts...)
	if err == nil {
		_, err = io.Copy(w, bufio.NewReaderSize(src, 1<<20))
	}
	if err == nil {
		err = w.Close()
	}
	if err == nil {
		err = bw.Flush()
	}
	if cerr := dst.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		// Never leave a truncated container behind: its valid signature
		// would route a later decompress into a confusing mid-stream error.
		os.Remove(out)
	}
	must(err)

	st := w.Stats()
	mbps := float64(st.BytesIn) / (1 << 20) / st.EncodeTime.Seconds()
	fmt.Printf("streamed %s: %d -> %d bytes (ratio %.2fx, %d chunks) in %v (%.1f MB/s)\n",
		in, st.BytesIn, st.BytesOut, st.Ratio, st.Chunks, st.EncodeTime, mbps)
	if p.adaptiveSpace {
		fmt.Printf("  adaptive-space: %d regions from %d splits\n", st.Chunks, st.Splits)
	}
	if st.MinBound != st.MaxBound {
		fmt.Printf("  per-chunk bounds: [%.6g, %.6g]\n", st.MinBound, st.MaxBound)
	}
	if p.verify {
		verifyStream(in, out, copts, st.MaxBound)
	}
}

// verifyStream re-reads both files and checks the loosest per-chunk bound
// (or the user's pointwise-relative bound, which has no single absolute
// equivalent to record).
func verifyStream(in, out string, copts rqm.CodecOptions, maxBound float64) {
	orig := readField(in)
	blob, err := os.Open(out)
	must(err)
	defer blob.Close()
	r, err := rqm.NewReader(bufio.NewReaderSize(blob, 1<<20))
	must(err)
	dec, err := r.ReadAll()
	must(err)
	if maxBound > 0 {
		must(rqm.VerifyErrorBound(orig, dec, rqm.ABS, maxBound*(1+1e-12)))
	} else {
		must(rqm.VerifyErrorBound(orig, dec, copts.Mode, copts.ErrorBound))
	}
	psnr, err := rqm.PSNR(orig, dec)
	must(err)
	fmt.Printf("  verified: per-chunk bounds hold, PSNR %.2f dB\n", psnr)
}

func cmdDecompress(args []string) {
	fs := flag.NewFlagSet("decompress", flag.ExitOnError)
	var (
		in      = fs.String("in", "", "input compressed file")
		out     = fs.String("out", "", "output .rqmf field file")
		workers = fs.Int("workers", 0, "concurrent chunk decompressors (0 = GOMAXPROCS)")
		remote  = fs.String("remote", "", "route through a rqserved instance at this base URL")
	)
	must(fs.Parse(args))
	if *in == "" || *out == "" {
		fatal(fmt.Errorf("decompress: -in and -out are required"))
	}
	if *remote != "" {
		decompressRemote(*remote, *in, *out)
		return
	}
	if chunked, _ := sniffChunked(*in); chunked {
		decompressStream(*in, *out, *workers)
		return
	}
	blob, err := os.ReadFile(*in)
	must(err)
	// Containers are self-describing: routing picks the backend.
	f, err := rqm.Decompress(blob)
	must(err)
	dst, err := os.Create(*out)
	must(err)
	_, err = f.WriteTo(dst)
	if cerr := dst.Close(); err == nil {
		err = cerr
	}
	must(err)
	fmt.Printf("decompressed %s -> %s (field %q, dims %v)\n", *in, *out, f.Name, f.Dims)
}

// decompressStream decodes a chunked container through the concurrent
// reader. When the stream header carries the field shape, decoded samples
// stream straight to the output file.
func decompressStream(in, out string, workers int) {
	src, err := os.Open(in)
	must(err)
	defer src.Close()
	var ropts []rqm.StreamReaderOption
	if workers > 0 {
		ropts = append(ropts, rqm.WithStreamReaderWorkers(workers))
	}
	r, err := rqm.NewReader(bufio.NewReaderSize(src, 1<<20), ropts...)
	must(err)
	hdr := r.Header()

	dst, err := os.Create(out)
	must(err)
	if len(hdr.Dims) > 0 {
		// Shape known up front: stream samples directly to disk.
		want := hdr.TotalFromDims()
		bw := bufio.NewWriterSize(dst, 1<<20)
		_, err = grid.WriteHeader(bw, hdr.Prec, hdr.Dims)
		if err == nil {
			_, err = io.Copy(bw, r)
		}
		if err == nil && r.Values() != want {
			// The written header promised the shape; a mismatched stream
			// would leave a corrupt field file behind.
			err = fmt.Errorf("stream decodes to %d values, header shape %v declares %d",
				r.Values(), hdr.Dims, want)
		}
		if err == nil {
			err = bw.Flush()
		}
		if cerr := dst.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			os.Remove(out)
		}
		must(err)
		fmt.Printf("decompressed %s -> %s (field %q, dims %v, %d values, streamed)\n",
			in, out, hdr.Name, hdr.Dims, r.Values())
		return
	}
	f, err := r.ReadAll()
	if err == nil {
		_, err = f.WriteTo(dst)
	}
	if cerr := dst.Close(); err == nil {
		err = cerr
	}
	must(err)
	fmt.Printf("decompressed %s -> %s (field %q, dims %v)\n", in, out, f.Name, f.Dims)
}

func cmdInspect(args []string) {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	in := fs.String("in", "", "compressed file")
	full := fs.Bool("full", false, "also decompress and report value statistics")
	chunks := fs.Bool("chunks", false, "list every chunk of a chunked container")
	must(fs.Parse(args))
	if *in == "" {
		fatal(fmt.Errorf("inspect: -in is required"))
	}
	if chunked, _ := sniffChunked(*in); chunked {
		inspectChunked(*in, *full, *chunks)
		return
	}
	blob, err := os.ReadFile(*in)
	must(err)
	info, err := rqm.Inspect(blob)
	must(err)
	format := "envelope v" + fmt.Sprint(info.Version)
	if info.Legacy {
		format = "legacy native"
	}
	codecName := info.CodecName
	if codecName == "" {
		codecName = fmt.Sprintf("unregistered id %d", info.CodecID)
	}
	fmt.Printf("container: %d bytes, %s, codec %s (payload %d bytes)\n",
		len(blob), format, codecName, info.PayloadBytes)
	fmt.Printf("field: %q dims=%v precision=float%d\n", info.FieldName, info.Dims, info.Prec.Bits())
	if !*full {
		return
	}
	f, err := rqm.Decompress(blob)
	must(err)
	lo, hi := f.ValueRange()
	fmt.Printf("values: %d, range [%g, %g]\n", f.Len(), lo, hi)
	fmt.Printf("effective ratio vs original precision: %.2fx\n",
		float64(f.OriginalBytes())/float64(len(blob)))
}

// inspectChunked describes a chunked container through its trailer index —
// no payload is decoded unless -full asks for value statistics.
func inspectChunked(in string, full, listChunks bool) {
	fh, err := os.Open(in)
	must(err)
	defer fh.Close()
	size, _ := fh.Seek(0, io.SeekEnd)
	idx, err := rqm.ReadStreamIndex(fh)
	must(err)
	h := idx.Header
	codecName := fmt.Sprintf("unregistered id %d", h.CodecID)
	if c, err := rqm.CodecByID(h.CodecID); err == nil {
		codecName = c.Name()
	}
	fmt.Printf("container: %d bytes, chunked stream v2, codec %s\n", size, codecName)
	fmt.Printf("field: %q dims=%v precision=float%d\n", h.Name, h.Dims, h.Prec.Bits())
	fmt.Printf("chunks: %d x <=%d values (%d values total)\n",
		len(idx.Entries), h.ChunkValues, idx.TotalValues)
	loB, hiB := boundRange(idx.Entries)
	if loB != hiB {
		fmt.Printf("per-chunk bounds: [%.6g, %.6g]\n", loB, hiB)
	} else if len(idx.Entries) > 0 {
		fmt.Printf("error bound: %.6g (abs)\n", loB)
	}
	if listChunks {
		for i, e := range idx.Entries {
			fmt.Printf("  chunk %4d: offset %10d, %8d values, %8d bytes, bound %.6g\n",
				i, e.Offset, e.Values, e.RecordBytes, e.AbsBound)
		}
	}
	if full {
		blob, err := os.ReadFile(in)
		must(err)
		f, err := rqm.Decompress(blob)
		must(err)
		lo, hi := f.ValueRange()
		fmt.Printf("values: %d, range [%g, %g]\n", f.Len(), lo, hi)
		fmt.Printf("effective ratio vs original precision: %.2fx\n",
			float64(f.OriginalBytes())/float64(len(blob)))
	}
}

// boundRange scans index entries for the min/max per-chunk bound.
func boundRange(entries []rqm.StreamIndexEntry) (lo, hi float64) {
	for i, e := range entries {
		if i == 0 || e.AbsBound < lo {
			lo = e.AbsBound
		}
		if e.AbsBound > hi {
			hi = e.AbsBound
		}
	}
	return lo, hi
}

// sniffChunked peeks at a file's first bytes for the chunked signature.
func sniffChunked(path string) (bool, error) {
	fh, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer fh.Close()
	head := make([]byte, 5)
	if _, err := io.ReadFull(fh, head); err != nil {
		return false, nil // too short to be chunked; let the normal path report
	}
	return rqm.IsChunkedContainer(head), nil
}

// remoteParams carries the compress flags routed to a rqserved instance.
type remoteParams struct {
	codec, predictor, mode, lossless string
	eb                               float64
	stream                           bool
	threshold                        int64
	chunk                            int
	targetRatio, targetPSNR          float64
	sampleRate                       float64
	adaptiveSpace                    bool
	verify                           bool
}

// compressRemote ships the field file to a rqserved instance and streams the
// container back — the CLI as a thin client.
func compressRemote(base, in, out string, p remoteParams) {
	c, err := client.New(base)
	must(err)
	params := client.CompressParams{
		Codec: p.codec, Predictor: p.predictor, Mode: p.mode, Lossless: p.lossless,
		ErrorBound: p.eb, ChunkValues: p.chunk,
		TargetRatio: p.targetRatio, TargetPSNR: p.targetPSNR,
		SampleRate: p.sampleRate, AdaptiveSpace: p.adaptiveSpace,
	}
	// The request body streams from disk with no declared length, so the
	// server cannot size-detect: decide streaming here, mirroring the local
	// threshold rule.
	params.Stream = p.stream
	if !params.Stream && p.threshold > 0 {
		if st, err := os.Stat(in); err == nil && st.Size() >= p.threshold {
			params.Stream = true
		}
	}
	adaptive := p.targetRatio > 0 || p.targetPSNR > 0
	if params.Stream && !adaptive && strings.EqualFold(p.mode, "rel") {
		// Streamed REL needs the stream-global range; scan it locally.
		params.HasValueRange = true
		params.ValueLo, params.ValueHi = scanValueRange(in)
	}

	src, err := os.Open(in)
	must(err)
	defer src.Close()
	dst, err := os.Create(out)
	must(err)
	bw := bufio.NewWriterSize(dst, 1<<20)
	info, err := c.Compress(context.Background(), bufio.NewReaderSize(src, 1<<20), bw, params)
	if err == nil {
		err = bw.Flush()
	}
	if cerr := dst.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(out)
	}
	must(err)
	st, _ := os.Stat(out)
	if info.Streamed {
		fmt.Printf("remote-compressed %s -> %s (%d bytes, streamed via %s)\n", in, out, st.Size(), base)
	} else {
		fmt.Printf("remote-compressed %s -> %s (%d bytes, codec %s, ratio %.2fx) via %s\n",
			in, out, st.Size(), info.Codec, info.Ratio, base)
	}
	if p.verify {
		verifyRemoteOutput(in, out, p)
	}
}

// verifyRemoteOutput re-reads both files and checks the served container
// locally — the same end-to-end guarantee -verify gives the local paths.
func verifyRemoteOutput(in, out string, p remoteParams) {
	orig := readField(in)
	blob, err := os.ReadFile(out)
	must(err)
	dec, err := rqm.Decompress(blob)
	must(err)
	adaptive := p.targetRatio > 0 || p.targetPSNR > 0
	if adaptive {
		// Adaptive runs have no single user bound; hold the container to the
		// loosest per-chunk bound it recorded.
		idx, err := rqm.ReadStreamIndex(bytes.NewReader(blob))
		must(err)
		if _, maxB := boundRange(idx.Entries); maxB > 0 {
			must(rqm.VerifyErrorBound(orig, dec, rqm.ABS, maxB*(1+1e-12)))
		}
	} else {
		m, err := rqm.ParseErrorMode(p.mode)
		must(err)
		must(rqm.VerifyErrorBound(orig, dec, m, p.eb))
	}
	psnr, err := rqm.PSNR(orig, dec)
	must(err)
	fmt.Printf("  verified: bound holds, PSNR %.2f dB\n", psnr)
}

// decompressRemote streams a container to a rqserved instance and the field
// back to disk.
func decompressRemote(base, in, out string) {
	c, err := client.New(base)
	must(err)
	src, err := os.Open(in)
	must(err)
	defer src.Close()
	dst, err := os.Create(out)
	must(err)
	bw := bufio.NewWriterSize(dst, 1<<20)
	err = c.Decompress(context.Background(), bufio.NewReaderSize(src, 1<<20), bw)
	if err == nil {
		err = bw.Flush()
	}
	if cerr := dst.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(out)
	}
	must(err)
	st, _ := os.Stat(out)
	fmt.Printf("remote-decompressed %s -> %s (%d bytes) via %s\n", in, out, st.Size(), base)
}

// ---------------------------------------------------------------------------
// Dataset archive subcommands (remote only)

// storeClient builds the client for the dataset subcommands, which have no
// local mode: the archive lives behind a rqserved -store-dir instance.
func storeClient(base string) *client.Client {
	if base == "" {
		fatal(fmt.Errorf("dataset commands need -remote URL (a rqserved instance with -store-dir)"))
	}
	c, err := client.New(base)
	must(err)
	return c
}

func cmdPut(args []string) {
	fs := flag.NewFlagSet("put", flag.ExitOnError)
	codecNames := strings.Join(rqm.CodecNames(), "|")
	var (
		remote    = fs.String("remote", "", "rqserved base URL (required)")
		name      = fs.String("name", "", "dataset name (required)")
		in        = fs.String("in", "", "input .rqmf field file (required)")
		codecName = fs.String("codec", "", codecNames+" (empty = server default)")
		predName  = fs.String("predictor", "", "prediction scheme (empty = server default)")
		mode      = fs.String("mode", "", "abs|rel (empty = server default)")
		eb        = fs.Float64("eb", 0, "error bound, mode semantics (0 = server default)")
		lossless  = fs.String("lossless", "", "none|rle|lz77|flate (empty = server default)")
		chunk     = fs.Int("chunk", 0, "chunk size in values (0 = default)")
		sample    = fs.Float64("sample", 0, "profile sampling rate (0 = server default)")
		seed      = fs.Uint64("seed", 0, "profile sampling seed (0 = server default)")
		exact     = fs.Bool("exact", false, "also store a lossless residual layer for bit-exact reads")
		resBack   = fs.String("residual-backend", "", "residual entropy coder (with -exact; empty = server default)")
	)
	must(fs.Parse(args))
	if *name == "" || *in == "" {
		fatal(fmt.Errorf("put: -name and -in are required"))
	}
	if *resBack != "" && !*exact {
		fatal(fmt.Errorf("put: -residual-backend needs -exact"))
	}
	c := storeClient(*remote)
	src, err := os.Open(*in)
	must(err)
	defer src.Close()
	info, err := c.PutDataset(context.Background(), *name, bufio.NewReaderSize(src, 1<<20),
		client.PutDatasetParams{
			Codec: *codecName, Predictor: *predName, Mode: *mode, Lossless: *lossless,
			ErrorBound: *eb, ChunkValues: *chunk, SampleRate: *sample, Seed: *seed,
			Exact: *exact, ResidualBackend: *resBack,
		})
	must(err)
	fmt.Printf("put %s: %d values in %d chunks, %d -> %d bytes (ratio %.2fx, %s %g, est PSNR %.2f dB)\n",
		info.Name, info.TotalValues, info.Chunks, info.OriginalBytes, info.ContainerBytes,
		info.Ratio, info.Mode, info.ErrorBound, float64(info.EstPSNR))
	if info.Exact {
		fmt.Printf("  exact tier: %d residual bytes (%s), lossy+residual = %.1f%% of the original\n",
			info.ResidualBytes, info.ResidualBackend,
			100*float64(info.ContainerBytes+info.ResidualBytes)/float64(info.OriginalBytes))
	}
}

func cmdGet(args []string) {
	fs := flag.NewFlagSet("get", flag.ExitOnError)
	var (
		remote = fs.String("remote", "", "rqserved base URL (required)")
		name   = fs.String("name", "", "dataset name (required)")
		out    = fs.String("out", "", "output file (required)")
		off    = fs.Int64("off", 0, "slice start element (with -len)")
		length = fs.Int64("len", 0, "slice length in elements (0 = whole dataset)")
		raw    = fs.Bool("raw", false, "fetch the compressed container instead of the field")
		exact  = fs.Bool("exact", false, "read the lossless tier: the original bit for bit (needs a residual layer)")
	)
	must(fs.Parse(args))
	if *name == "" || *out == "" {
		fatal(fmt.Errorf("get: -name and -out are required"))
	}
	if *raw && *length > 0 {
		fatal(fmt.Errorf("get: -raw and -len are mutually exclusive"))
	}
	if *raw && *exact {
		fatal(fmt.Errorf("get: -raw and -exact are mutually exclusive"))
	}
	c := storeClient(*remote)
	dst, err := os.Create(*out)
	must(err)
	bw := bufio.NewWriterSize(dst, 1<<20)
	switch {
	case *length > 0 && *exact:
		err = c.SliceDatasetExact(context.Background(), *name, *off, *length, bw)
	case *length > 0:
		err = c.SliceDataset(context.Background(), *name, *off, *length, bw)
	case *raw:
		err = c.GetDatasetContainer(context.Background(), *name, bw)
	case *exact:
		err = c.GetDatasetExact(context.Background(), *name, bw)
	default:
		err = c.GetDataset(context.Background(), *name, bw)
	}
	if err == nil {
		err = bw.Flush()
	}
	if cerr := dst.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(*out)
	}
	must(err)
	st, _ := os.Stat(*out)
	if *length > 0 {
		fmt.Printf("got %s[%d:%d] -> %s (%d bytes)\n", *name, *off, *off+*length, *out, st.Size())
	} else {
		fmt.Printf("got %s -> %s (%d bytes)\n", *name, *out, st.Size())
	}
}

func cmdLs(args []string) {
	fs := flag.NewFlagSet("ls", flag.ExitOnError)
	remote := fs.String("remote", "", "rqserved base URL (required)")
	must(fs.Parse(args))
	c := storeClient(*remote)
	infos, err := c.ListDatasets(context.Background())
	must(err)
	if len(infos) == 0 {
		fmt.Println("no datasets")
		return
	}
	fmt.Printf("%-24s %-14s %10s %12s %8s %6s %s\n",
		"NAME", "DIMS", "VALUES", "BYTES", "RATIO", "GEN", "BOUND")
	for _, d := range infos {
		fmt.Printf("%-24s %-14s %10d %12d %7.2fx %6d %s %g\n",
			d.Name, fmt.Sprint(d.Dims), d.TotalValues, d.ContainerBytes, d.Ratio,
			d.Generation, d.Mode, d.ErrorBound)
	}
}

func cmdRm(args []string) {
	fs := flag.NewFlagSet("rm", flag.ExitOnError)
	var (
		remote = fs.String("remote", "", "rqserved base URL (required)")
		name   = fs.String("name", "", "dataset name (required)")
	)
	must(fs.Parse(args))
	if *name == "" {
		fatal(fmt.Errorf("rm: -name is required"))
	}
	c := storeClient(*remote)
	must(c.DeleteDataset(context.Background(), *name))
	fmt.Printf("removed %s\n", *name)
}

func cmdRecompact(args []string) {
	fs := flag.NewFlagSet("recompact", flag.ExitOnError)
	var (
		remote      = fs.String("remote", "", "rqserved base URL (required)")
		name        = fs.String("name", "", "dataset name (required)")
		targetRatio = fs.Float64("target-ratio", 0, "recompact toward this compression ratio")
		targetPSNR  = fs.Float64("target-psnr", 0, "recompact toward this PSNR in dB")
		adaptSpace  = fs.Bool("adaptive-space", false, "rewrite with variance-guided spatial partitioning (recorded in the manifest)")
	)
	must(fs.Parse(args))
	if *name == "" {
		fatal(fmt.Errorf("recompact: -name is required"))
	}
	if (*targetRatio > 0) == (*targetPSNR > 0) {
		fatal(fmt.Errorf("recompact: need exactly one of -target-ratio, -target-psnr"))
	}
	target := client.SolveTarget{Kind: "ratio", Value: *targetRatio}
	if *targetPSNR > 0 {
		target = client.SolveTarget{Kind: "psnr", Value: *targetPSNR}
	}
	var ropts []client.RecompactOption
	if *adaptSpace {
		ropts = append(ropts, client.WithAdaptiveSpace())
	}
	c := storeClient(*remote)
	rr, err := c.RecompactDataset(context.Background(), *name, target, ropts...)
	must(err)
	if rr.Skipped {
		fmt.Printf("recompact %s: skipped (%s)\n", rr.Name, rr.Reason)
		return
	}
	fmt.Printf("recompacted %s: bound %.6g -> %.6g, ratio %.2fx -> %.2fx (est PSNR %.2f dB, generation %d)\n",
		rr.Name, rr.OldBound, rr.NewBound, rr.OldRatio, rr.NewRatio, float64(rr.EstPSNR), rr.Generation)
}

// cmdPromote adds a lossless residual layer to a stored dataset: the local
// file must be the true original (the server verifies it against the
// dataset's content hash before building the residual).
func cmdPromote(args []string) {
	fs := flag.NewFlagSet("promote", flag.ExitOnError)
	var (
		remote = fs.String("remote", "", "rqserved base URL (required)")
		name   = fs.String("name", "", "dataset name (required)")
		in     = fs.String("in", "", "the original .rqmf field file (required)")
	)
	must(fs.Parse(args))
	if *name == "" || *in == "" {
		fatal(fmt.Errorf("promote: -name and -in are required"))
	}
	c := storeClient(*remote)
	src, err := os.Open(*in)
	must(err)
	defer src.Close()
	info, err := c.PromoteDataset(context.Background(), *name, bufio.NewReaderSize(src, 1<<20))
	must(err)
	fmt.Printf("promoted %s: %d residual bytes (%s), generation %d — exact reads enabled\n",
		info.Name, info.ResidualBytes, info.ResidualBackend, info.Generation)
}

// cmdDemote drops a dataset's residual layer, keeping the lossy base.
func cmdDemote(args []string) {
	fs := flag.NewFlagSet("demote", flag.ExitOnError)
	var (
		remote = fs.String("remote", "", "rqserved base URL (required)")
		name   = fs.String("name", "", "dataset name (required)")
	)
	must(fs.Parse(args))
	if *name == "" {
		fatal(fmt.Errorf("demote: -name is required"))
	}
	c := storeClient(*remote)
	info, err := c.DemoteDataset(context.Background(), *name)
	must(err)
	if info.Exact {
		fmt.Printf("demote %s: residual layer still present (unexpected)\n", info.Name)
		return
	}
	fmt.Printf("demoted %s: residual layer dropped, lossy base kept (generation %d)\n",
		info.Name, info.Generation)
}

// cmdScrub starts one background integrity pass on a shard's archive and —
// unless -nowait — polls status until it finishes, then prints the report.
func cmdScrub(args []string) {
	fs := flag.NewFlagSet("scrub", flag.ExitOnError)
	remote := fs.String("remote", "", "rqserved base URL (required; scrub runs where the archive lives)")
	deep := fs.Bool("deep", false, "fully decode every chunk and re-hash each container against its commit-time SHA-256")
	nowait := fs.Bool("nowait", false, "start the pass and return immediately (poll with scrub -status)")
	status := fs.Bool("status", false, "report the current/last pass instead of starting one")
	must(fs.Parse(args))
	if *remote == "" {
		fatal(fmt.Errorf("scrub: -remote URL is required (an rqserved shard)"))
	}
	c := storeClient(*remote)
	ctx := context.Background()
	st, err := (*client.ScrubStatus)(nil), error(nil)
	if *status {
		st, err = c.ScrubStatus(ctx)
	} else {
		st, err = c.StartScrub(ctx, *deep)
	}
	must(err)
	if !*status && !*nowait {
		for st.State == "running" {
			time.Sleep(200 * time.Millisecond)
			st, err = c.ScrubStatus(ctx)
			must(err)
		}
	}
	printScrubStatus(st)
	if st.State == "failed" || (st.Report != nil && len(st.Report.Issues) > 0) {
		os.Exit(1)
	}
}

func printScrubStatus(st *client.ScrubStatus) {
	mode := "shallow"
	if st.Deep {
		mode = "deep"
	}
	switch st.State {
	case "idle":
		fmt.Println("scrub: no pass has run")
		return
	case "running":
		fmt.Printf("scrub (%s): running, %d/%d datasets scanned (current %s)\n",
			mode, st.Scanned, st.Total, st.Current)
		return
	case "failed":
		fmt.Printf("scrub (%s): FAILED: %s\n", mode, st.Error)
		return
	}
	r := st.Report
	if r == nil {
		fmt.Printf("scrub (%s): %s\n", mode, st.State)
		return
	}
	fmt.Printf("scrub (%s): %d datasets, %d chunks verified, %d/%d bytes verified, %d quarantined (%d bytes)\n",
		mode, r.Datasets, r.ChunksVerified, r.BytesVerified, r.BytesScanned,
		r.DatasetsQuarantined, r.BytesQuarantined)
	for _, issue := range r.Issues {
		disposition := "left in place"
		if issue.Quarantined {
			disposition = "quarantined"
		}
		fmt.Printf("  %s (%d bytes, %s): %s\n", issue.Name, issue.Bytes, disposition, issue.Reason)
	}
}

// ---------------------------------------------------------------------------
// Cluster subcommands (rqrouter only)

func cmdCluster(args []string) {
	fs := flag.NewFlagSet("cluster", flag.ExitOnError)
	remote := fs.String("remote", "", "rqrouter base URL (required)")
	must(fs.Parse(args))
	if *remote == "" {
		fatal(fmt.Errorf("cluster: -remote URL is required (an rqrouter instance)"))
	}
	c := storeClient(*remote)
	cs, err := c.RouterStatus(context.Background())
	must(err)
	fmt.Printf("cluster: %d/%d shards healthy, R=%d (quorum %d), %d vnodes/shard (%d ring points)\n",
		cs.Healthy, len(cs.Shards), cs.Replicas, cs.Quorum, cs.VNodes, cs.RingPoints)
	fmt.Printf("%-32s %-8s %8s %6s %s\n", "SHARD", "STATE", "DATASETS", "FAILS", "LAST ERROR")
	for _, sh := range cs.Shards {
		state := "up"
		if !sh.Healthy {
			state = "down"
		}
		fmt.Printf("%-32s %-8s %8d %6d %s\n", sh.URL, state, sh.Datasets, sh.ConsecutiveFailures, sh.LastError)
	}
}

func cmdRebalance(args []string) {
	fs := flag.NewFlagSet("rebalance", flag.ExitOnError)
	remote := fs.String("remote", "", "rqrouter base URL (required)")
	must(fs.Parse(args))
	if *remote == "" {
		fatal(fmt.Errorf("rebalance: -remote URL is required (an rqrouter instance)"))
	}
	c := storeClient(*remote)
	rr, err := c.Rebalance(context.Background())
	must(err)
	fmt.Printf("rebalanced %d datasets across %d live shards: %d copied (%d bytes moved, raw — no recompression), %d already placed, %d stray removed, %d conflicts, %d failed\n",
		rr.Datasets, rr.ShardsLive, rr.Copied, rr.BytesMoved, rr.Skipped, rr.Removed, rr.Conflicts, rr.Failed)
}

// scanValueRange streams a field file once to find its global value range
// without materializing the samples — the pre-pass that lets streamed REL
// compression enforce the same absolute bound as whole-buffer REL.
func scanValueRange(path string) (lo, hi float64) {
	fh, err := os.Open(path)
	must(err)
	defer fh.Close()
	prec, _, err := grid.ReadHeader(fh)
	must(err)
	width := prec.Bits() / 8
	br := bufio.NewReaderSize(fh, 1<<20)
	buf := make([]byte, 4096*width)
	lo, hi = math.Inf(1), math.Inf(-1)
	rem := 0
	for {
		n, rerr := br.Read(buf[rem:])
		total := rem + n
		full := total / width * width
		for off := 0; off < full; off += width {
			var v float64
			if prec == grid.Float32 {
				v = float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[off:])))
			} else {
				v = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		copy(buf, buf[full:total])
		rem = total - full
		if rerr == io.EOF {
			break
		}
		must(rerr)
	}
	if lo > hi { // empty field file
		lo, hi = 0, 0
	}
	return lo, hi
}

func readField(path string) *grid.Field {
	in, err := os.Open(path)
	must(err)
	defer in.Close()
	f, err := grid.ReadFrom(in)
	must(err)
	if f.Name == "" {
		f.Name = path
	}
	return f
}

func must(err error) {
	if err != nil {
		fatal(err)
	}
}

// exit is swapped out by tests to observe usage errors without killing the
// test binary.
var exit = os.Exit

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rqc:", err)
	exit(1)
}
