// Command rqc is the CLI front end of the error-bounded compressor family.
// Codec selection goes through the registry, so every registered backend is
// reachable with -codec; output containers are self-describing, so
// decompress and inspect need no codec flag at all.
//
// Usage:
//
//	rqc compress   -in field.rqmf -out field.rqz -codec prediction -predictor lorenzo -mode rel -eb 1e-3 -lossless flate
//	rqc compress   -in field.rqmf -out field.rqz -codec transform -mode abs -eb 1e-2
//	rqc decompress -in field.rqz  -out field.rqmf
//	rqc inspect    -in field.rqz
//
// compress prints the run statistics; with -verify it also decompresses and
// checks the error bound end to end.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rqm"
	"rqm/internal/grid"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "compress":
		cmdCompress(os.Args[2:])
	case "decompress":
		cmdDecompress(os.Args[2:])
	case "inspect":
		cmdInspect(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: rqc compress|decompress|inspect [flags]")
	os.Exit(2)
}

func cmdCompress(args []string) {
	fs := flag.NewFlagSet("compress", flag.ExitOnError)
	codecNames := strings.Join(rqm.CodecNames(), "|")
	var (
		in        = fs.String("in", "", "input .rqmf field file")
		out       = fs.String("out", "", "output compressed file")
		codecName = fs.String("codec", rqm.CodecPredictionName, codecNames)
		predName  = fs.String("predictor", "lorenzo", "lorenzo|lorenzo2|interpolation|interpolation-cubic|regression")
		mode      = fs.String("mode", "rel", "abs|rel|pwrel")
		eb        = fs.Float64("eb", 1e-3, "error bound (mode semantics)")
		lossless  = fs.String("lossless", "flate", "none|rle|lz77|flate")
		verify    = fs.Bool("verify", false, "decompress and verify the bound")
	)
	must(fs.Parse(args))
	if *in == "" || *out == "" {
		fatal(fmt.Errorf("compress: -in and -out are required"))
	}
	f := readField(*in)

	kind, err := rqm.ParsePredictorKind(*predName)
	must(err)
	m, err := rqm.ParseErrorMode(*mode)
	must(err)
	ll, err := rqm.ParseLosslessKind(*lossless)
	must(err)
	eng, err := rqm.NewEngine(
		rqm.WithCodecName(*codecName),
		rqm.WithPredictor(kind),
		rqm.WithMode(m),
		rqm.WithErrorBound(*eb),
		rqm.WithLossless(ll),
	)
	must(err)

	res, err := eng.Compress(f)
	must(err)
	must(os.WriteFile(*out, res.Bytes, 0o644))
	st := res.Stats
	fmt.Printf("compressed %s (%s): %d -> %d bytes (ratio %.2fx, %.3f bits/value) in %v\n",
		*in, st.Codec, st.OriginalBytes, st.CompressedBytes, st.Ratio, st.BitRate, st.EncodeTime)
	if *verify {
		dec, err := eng.Decompress(res.Bytes)
		must(err)
		must(rqm.VerifyErrorBound(f, dec, m, *eb))
		psnr, err := rqm.PSNR(f, dec)
		must(err)
		fmt.Printf("  verified: bound holds, PSNR %.2f dB\n", psnr)
	}
}

func cmdDecompress(args []string) {
	fs := flag.NewFlagSet("decompress", flag.ExitOnError)
	var (
		in  = fs.String("in", "", "input compressed file")
		out = fs.String("out", "", "output .rqmf field file")
	)
	must(fs.Parse(args))
	if *in == "" || *out == "" {
		fatal(fmt.Errorf("decompress: -in and -out are required"))
	}
	blob, err := os.ReadFile(*in)
	must(err)
	// Containers are self-describing: routing picks the backend.
	f, err := rqm.Decompress(blob)
	must(err)
	dst, err := os.Create(*out)
	must(err)
	_, err = f.WriteTo(dst)
	if cerr := dst.Close(); err == nil {
		err = cerr
	}
	must(err)
	fmt.Printf("decompressed %s -> %s (field %q, dims %v)\n", *in, *out, f.Name, f.Dims)
}

func cmdInspect(args []string) {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	in := fs.String("in", "", "compressed file")
	full := fs.Bool("full", false, "also decompress and report value statistics")
	must(fs.Parse(args))
	if *in == "" {
		fatal(fmt.Errorf("inspect: -in is required"))
	}
	blob, err := os.ReadFile(*in)
	must(err)
	info, err := rqm.Inspect(blob)
	must(err)
	format := "envelope v" + fmt.Sprint(info.Version)
	if info.Legacy {
		format = "legacy native"
	}
	codecName := info.CodecName
	if codecName == "" {
		codecName = fmt.Sprintf("unregistered id %d", info.CodecID)
	}
	fmt.Printf("container: %d bytes, %s, codec %s (payload %d bytes)\n",
		len(blob), format, codecName, info.PayloadBytes)
	fmt.Printf("field: %q dims=%v precision=float%d\n", info.FieldName, info.Dims, info.Prec.Bits())
	if !*full {
		return
	}
	f, err := rqm.Decompress(blob)
	must(err)
	lo, hi := f.ValueRange()
	fmt.Printf("values: %d, range [%g, %g]\n", f.Len(), lo, hi)
	fmt.Printf("effective ratio vs original precision: %.2fx\n",
		float64(f.OriginalBytes())/float64(len(blob)))
}

func readField(path string) *grid.Field {
	in, err := os.Open(path)
	must(err)
	defer in.Close()
	f, err := grid.ReadFrom(in)
	must(err)
	if f.Name == "" {
		f.Name = path
	}
	return f
}

func must(err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rqc:", err)
	os.Exit(1)
}
