// Command rqrouter fronts a fleet of rqserved shards with the stateless
// cluster tier (internal/router): datasets are placed on a consistent-hash
// ring with virtual nodes and replicated to R shards (write quorum,
// read-from-any-healthy with failover). The router holds no durable state —
// restart it, or run several against the same shard list, freely.
//
// Usage:
//
//	rqrouter -addr :9090 -shards http://s1:8080,http://s2:8080,http://s3:8080
//	rqrouter -addr :9090 -shards ... -replicas 2 -vnodes 64 \
//	         -probe-interval 2s -fail-after 3 -shard-timeout 30s
//
// The router serves the dataset API (/v1/datasets*) transparently — point
// rqc or rqm/client at it exactly like a single shard — plus
// /v1/cluster/status, POST /v1/cluster/rebalance, /healthz and /metrics.
// Compute endpoints (/v1/compress, ...) stay shard-local.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rqm/internal/router"
)

func main() {
	var (
		addr     = flag.String("addr", ":9090", "listen address")
		shards   = flag.String("shards", "", "comma-separated rqserved base URLs (required)")
		replicas = flag.Int("replicas", 2, "replication factor R (capped at shard count)")
		vnodes   = flag.Int("vnodes", 64, "virtual nodes per shard on the hash ring")
		probe    = flag.Duration("probe-interval", 2*time.Second, "shard health-probe period")
		failN    = flag.Int("fail-after", 3, "consecutive probe failures before a shard is marked down")
		shardTO  = flag.Duration("shard-timeout", 30*time.Second,
			"per-request budget for a shard to return response headers (streaming-aware: "+
				"bodies may take longer; a hung shard fails over instead of stalling; negative disables)")
	)
	flag.Parse()

	var list []string
	for _, s := range strings.Split(*shards, ",") {
		if s = strings.TrimSpace(s); s != "" {
			list = append(list, s)
		}
	}
	if len(list) == 0 {
		fatal(errors.New("-shards is required (comma-separated rqserved base URLs)"))
	}

	rt, err := router.New(router.Config{
		Shards:        list,
		Replicas:      *replicas,
		VNodes:        *vnodes,
		ProbeInterval: *probe,
		FailAfter:     *failN,
		ShardTimeout:  *shardTO,
	})
	if err != nil {
		fatal(err)
	}
	defer rt.Close()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           rt,
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("rqrouter: listening on %s (%d shards, R=%d, quorum %d, %d vnodes)",
		*addr, len(list), rt.Status().Replicas, rt.Quorum(), *vnodes)

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	log.Printf("rqrouter: draining in-flight requests")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	log.Printf("rqrouter: stopped")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rqrouter:", err)
	os.Exit(1)
}
