// Command rqmodel runs the ratio-quality model on a field file: it prints
// the modeled rate-distortion table for an error-bound sweep, optionally
// validates against real compression runs, and solves the inverse problems.
// The model is codec-agnostic: -codec selects any registered backend.
//
// Usage:
//
//	rqmodel -in field.rqmf -predictor lorenzo
//	rqmodel -in field.rqmf -codec transform
//	rqmodel -in field.rqmf -target-psnr 60
//	rqmodel -in field.rqmf -target-bitrate 2.5
//	rqmodel -in field.rqmf -measure          # compare against real runs
//	rqmodel -in field.rqmf -target-psnr 60 -chunk-plan 262144  # streaming dry run
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"rqm"
	"rqm/internal/grid"
)

func main() {
	var (
		in            = flag.String("in", "", "input .rqmf field file")
		codecName     = flag.String("codec", rqm.CodecPredictionName, strings.Join(rqm.CodecNames(), "|"))
		predName      = flag.String("predictor", "lorenzo", "prediction scheme (prediction codec)")
		sampleRate    = flag.Float64("sample", 0.01, "model sampling rate")
		seed          = flag.Uint64("seed", 42, "sampling seed")
		measure       = flag.Bool("measure", false, "also run real compression for comparison")
		targetPSNR    = flag.Float64("target-psnr", 0, "solve error bound for this PSNR (dB)")
		targetBitRate = flag.Float64("target-bitrate", 0, "solve error bound for this bit-rate")
		targetRatio   = flag.Float64("target-ratio", 0, "solve error bound for this compression ratio")
		chunkPlan     = flag.Int("chunk-plan", 0, "with a target: print the per-chunk bound plan the streaming pipeline would use, at this chunk size in values")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "rqmodel: -in is required")
		os.Exit(2)
	}
	fh, err := os.Open(*in)
	must(err)
	f, err := grid.ReadFrom(fh)
	fh.Close()
	must(err)
	if f.Name == "" {
		f.Name = *in
	}
	kind, err := rqm.ParsePredictorKind(*predName)
	must(err)

	c, err := rqm.CodecByName(*codecName)
	must(err)
	copts := rqm.CodecOptions{Predictor: kind, Mode: rqm.ABS, Lossless: rqm.LosslessFlate}
	if *chunkPlan > 0 {
		planChunks(f, c, copts, *chunkPlan, *targetRatio, *targetPSNR,
			rqm.ModelOptions{SampleRate: *sampleRate, Seed: *seed, UseLossless: true})
		return
	}
	prof, err := c.Profile(f, copts, rqm.ModelOptions{SampleRate: *sampleRate, Seed: *seed, UseLossless: true})
	must(err)
	fmt.Printf("profile: %s/%s on %q (%d values, range %.6g, %d sampled errors, built in %v)\n",
		c.Name(), kind, f.Name, prof.N, prof.Range, len(prof.Errors), prof.BuildTime)

	switch {
	case *targetPSNR > 0:
		eb, err := prof.ErrorBoundForPSNR(*targetPSNR)
		must(err)
		est := prof.EstimateAt(eb)
		fmt.Printf("error bound for PSNR >= %.2f dB: %.6g (modeled PSNR %.2f, ratio %.2fx)\n",
			*targetPSNR, eb, est.PSNR, est.Ratio)
	case *targetBitRate > 0:
		eb, err := prof.ErrorBoundForBitRate(*targetBitRate)
		must(err)
		est := prof.EstimateAt(eb)
		fmt.Printf("error bound for %.3f bits/value: %.6g (modeled huffman %.3f, total %.3f)\n",
			*targetBitRate, eb, est.HuffmanBitRate, est.TotalBitRate)
	case *targetRatio > 1:
		eb, err := prof.ErrorBoundForRatio(*targetRatio)
		must(err)
		est := prof.EstimateAt(eb)
		fmt.Printf("error bound for ratio %.1fx: %.6g (modeled ratio %.2fx, PSNR %.2f dB)\n",
			*targetRatio, eb, est.Ratio, est.PSNR)
	default:
		sweep(prof, f, c, copts, *measure)
	}
}

func sweep(prof *rqm.Profile, f *rqm.Field, c rqm.Codec, copts rqm.CodecOptions, measure bool) {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	if measure {
		fmt.Fprintln(tw, "relEB\tabsEB\test bits\test ratio\test PSNR\test SSIM\tmeas bits\tmeas ratio\tmeas PSNR")
	} else {
		fmt.Fprintln(tw, "relEB\tabsEB\test bits\test ratio\test PSNR\test SSIM")
	}
	for _, rel := range []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1} {
		eb := rel * prof.Range
		est := prof.EstimateAt(eb)
		if !measure {
			fmt.Fprintf(tw, "%.0e\t%.4g\t%.3f\t%.2f\t%.2f\t%.4f\n",
				rel, eb, est.TotalBitRate, est.Ratio, est.PSNR, est.SSIM)
			continue
		}
		copts.ErrorBound = eb
		res, err := rqm.CompressWith(c, f, copts)
		must(err)
		dec, err := rqm.Decompress(res.Bytes)
		must(err)
		psnr, err := rqm.PSNR(f, dec)
		must(err)
		fmt.Fprintf(tw, "%.0e\t%.4g\t%.3f\t%.2f\t%.2f\t%.4f\t%.3f\t%.2f\t%.2f\n",
			rel, eb, est.TotalBitRate, est.Ratio, est.PSNR, est.SSIM,
			res.Stats.BitRate, res.Stats.Ratio, psnr)
	}
	must(tw.Flush())
}

// planChunks is a dry run of the streaming pipeline's adaptive layer: it
// splits the field into chunks, profiles each with the model, and prints
// the per-chunk bound the AdaptiveBound policy would pick — all without
// compressing a single byte.
func planChunks(f *rqm.Field, c rqm.Codec, copts rqm.CodecOptions,
	chunkValues int, targetRatio, targetPSNR float64, mopts rqm.ModelOptions) {
	if targetRatio <= 1 && targetPSNR <= 0 {
		must(fmt.Errorf("-chunk-plan needs -target-ratio or -target-psnr"))
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "chunk\tvalues\tabsEB\test bits\test ratio\test PSNR")
	for i, off := 0, 0; off < f.Len(); i, off = i+1, off+chunkValues {
		n := chunkValues
		if off+n > f.Len() {
			n = f.Len() - off
		}
		cf, err := rqm.FieldFromData(fmt.Sprintf("%s#%d", f.Name, i), f.Prec, f.Data[off:off+n], n)
		must(err)
		prof, err := c.Profile(cf, copts, mopts)
		if err != nil {
			fmt.Fprintf(tw, "%d\t%d\t(unprofilable: %v)\n", i, n, err)
			continue
		}
		var eb float64
		if targetRatio > 1 {
			eb, err = prof.ErrorBoundForRatio(targetRatio)
		} else {
			eb, err = prof.ErrorBoundForPSNR(targetPSNR)
		}
		if err != nil {
			fmt.Fprintf(tw, "%d\t%d\t(unsolvable: %v)\n", i, n, err)
			continue
		}
		est := prof.EstimateAt(eb)
		fmt.Fprintf(tw, "%d\t%d\t%.4g\t%.3f\t%.2f\t%.2f\n",
			i, n, eb, est.TotalBitRate, est.Ratio, est.PSNR)
	}
	must(tw.Flush())
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "rqmodel:", err)
		os.Exit(1)
	}
}
