// Command experiments regenerates the paper's tables and figures (DESIGN.md
// §16 lists the experiment ids).
//
// Usage:
//
//	experiments -list
//	experiments -run fig10
//	experiments -run all -scale small
package main

import (
	"flag"
	"fmt"
	"os"

	"rqm/internal/datagen"
	"rqm/internal/experiments"
)

func main() {
	var (
		run    = flag.String("run", "all", "experiment id or 'all'")
		scale  = flag.String("scale", "small", "tiny|small|medium")
		seed   = flag.Uint64("seed", 42, "generation/sampling seed")
		sample = flag.Float64("sample", 0.01, "model sampling rate")
		list   = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		return
	}
	cfg := experiments.Default()
	cfg.Seed = *seed
	cfg.SampleRate = *sample
	switch *scale {
	case "tiny":
		cfg.Scale = datagen.Tiny
		if *sample <= 0.01 {
			cfg.SampleRate = 0.2 // tiny fields need more samples
		}
	case "small":
		cfg.Scale = datagen.Small
	case "medium":
		cfg.Scale = datagen.Medium
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	if *run == "all" {
		if err := experiments.RunAll(cfg, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	reg := experiments.Registry()
	fn, ok := reg[*run]
	if !ok {
		fmt.Fprintf(os.Stderr, "experiments: unknown id %q (try -list)\n", *run)
		os.Exit(2)
	}
	if err := fn(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
