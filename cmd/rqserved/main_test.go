package main

import (
	"testing"

	"rqm"
)

// TestBuildEngine pins the flag-to-engine resolution, including failures.
func TestBuildEngine(t *testing.T) {
	eng, err := buildEngine(rqm.CodecPredictionName, "lorenzo", "rel", 1e-3, "flate", 2)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Codec().Name() != rqm.CodecPredictionName || eng.Concurrency() != 2 {
		t.Fatalf("engine %s x%d, want prediction x2", eng.Codec().Name(), eng.Concurrency())
	}
	if o := eng.Options(); o.Mode != rqm.REL || o.ErrorBound != 1e-3 || o.Lossless != rqm.LosslessFlate {
		t.Fatalf("options %+v", o)
	}

	bad := []struct{ codec, pred, mode, lossless string }{
		{"no-such-codec", "lorenzo", "rel", "none"},
		{rqm.CodecPredictionName, "no-such-predictor", "rel", "none"},
		{rqm.CodecPredictionName, "lorenzo", "sideways", "none"},
		{rqm.CodecPredictionName, "lorenzo", "rel", "no-such-lossless"},
	}
	for _, tc := range bad {
		if _, err := buildEngine(tc.codec, tc.pred, tc.mode, 1e-3, tc.lossless, 0); err == nil {
			t.Fatalf("buildEngine(%+v) accepted", tc)
		}
	}
	if _, err := buildEngine(rqm.CodecPredictionName, "lorenzo", "rel", -1, "none", 0); err == nil {
		t.Fatal("negative error bound accepted")
	}
}
