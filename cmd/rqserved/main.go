// Command rqserved serves the ratio-quality engine over HTTP: compression,
// decompression, and profile-cached model queries (estimate/solve answered
// in O(sample) from one sampling pass, no compression run). See
// internal/service for the endpoint contract and rqm/client (or
// `rqc -remote`) for the client side.
//
// Usage:
//
//	rqserved -addr :8080
//	rqserved -addr :8080 -codec prediction -predictor lorenzo -mode rel -eb 1e-3 \
//	         -max-inflight 32 -cache 256 -stream-threshold 67108864
//	rqserved -addr :8080 -store-dir /var/lib/rqm   # enable /v1/datasets
//
// With -store-dir the server also hosts the persistent dataset archive:
// PUT/GET/DELETE /v1/datasets/{name}, random-access slice reads, and
// model-guided recompaction (see internal/store).
//
// The server drains in-flight requests on SIGINT/SIGTERM (graceful
// shutdown, 15 s budget).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rqm"
	"rqm/internal/service"
	"rqm/internal/store"
)

func main() {
	codecNames := strings.Join(rqm.CodecNames(), "|")
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		codecName = flag.String("codec", rqm.CodecPredictionName, codecNames)
		predName  = flag.String("predictor", "lorenzo", "lorenzo|lorenzo2|interpolation|interpolation-cubic|regression")
		mode      = flag.String("mode", "rel", "abs|rel|pwrel (default error-bound mode)")
		eb        = flag.Float64("eb", 1e-3, "default error bound (mode semantics)")
		lossless  = flag.String("lossless", "none", "none|rle|lz77|flate")
		workers   = flag.Int("workers", 0, "engine worker count (0 = GOMAXPROCS)")
		inflight  = flag.Int("max-inflight", 0, "concurrent heavy requests before 429 (0 = 4x workers)")
		cacheSize = flag.Int("cache", 128, "profile LRU cache entries")
		threshold = flag.Int64("stream-threshold", service.DefaultStreamThreshold,
			"compress bodies at least this many bytes stream chunked (<0 disables)")
		sample   = flag.Float64("sample", 0, "model sampling rate for profiles (0 = paper default 1%)")
		storeDir = flag.String("store-dir", "",
			"host the persistent dataset archive at this directory (empty disables /v1/datasets)")
		pprofAddr = flag.String("pprof-addr", "",
			"serve net/http/pprof on this address (e.g. localhost:6060); empty disables")
	)
	flag.Parse()

	if *pprofAddr != "" {
		go servePprof(*pprofAddr)
	}

	eng, err := buildEngine(*codecName, *predName, *mode, *eb, *lossless, *workers)
	if err != nil {
		fatal(err)
	}
	var st *store.Store
	if *storeDir != "" {
		if st, err = store.Open(*storeDir); err != nil {
			fatal(err)
		}
		_, n := st.Bytes()
		log.Printf("rqserved: dataset store at %s (%d datasets)", *storeDir, n)
	}
	svc, err := service.New(service.Config{
		Engine:           eng,
		Model:            rqm.ModelOptions{SampleRate: *sample},
		MaxInflight:      *inflight,
		ProfileCacheSize: *cacheSize,
		StreamThreshold:  *threshold,
		Store:            st,
	})
	if err != nil {
		fatal(err)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc,
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("rqserved: listening on %s (codec %s, %s %g, cache %d profiles)",
		*addr, eng.Codec().Name(), *mode, *eb, *cacheSize)

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	// Flip readiness before closing the listener: routers probing /healthz
	// see 503 "draining" and stop sending new work here while in-flight
	// requests finish.
	svc.BeginDrain()
	log.Printf("rqserved: draining in-flight requests")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	log.Printf("rqserved: stopped")
}

// buildEngine resolves the flag set into a configured engine.
func buildEngine(codecName, predName, mode string, eb float64, lossless string, workers int) (*rqm.Engine, error) {
	kind, err := rqm.ParsePredictorKind(predName)
	if err != nil {
		return nil, err
	}
	m, err := rqm.ParseErrorMode(mode)
	if err != nil {
		return nil, err
	}
	ll, err := rqm.ParseLosslessKind(lossless)
	if err != nil {
		return nil, err
	}
	opts := []rqm.EngineOption{
		rqm.WithCodecName(codecName),
		rqm.WithPredictor(kind),
		rqm.WithMode(m),
		rqm.WithErrorBound(eb),
		rqm.WithLossless(ll),
	}
	if workers > 0 {
		opts = append(opts, rqm.WithConcurrency(workers))
	}
	return rqm.NewEngine(opts...)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rqserved:", err)
	os.Exit(1)
}
