package main

import (
	"log"
	"net/http"
	"net/http/pprof"
)

// servePprof exposes the runtime profiling endpoints on their own listener,
// opt-in via -pprof-addr and kept off the service port so profiles are never
// reachable through the public API surface. Serving-load investigations
// (like the one behind the fused-kernel rework) grab CPU/heap profiles with:
//
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=30
//	go tool pprof http://localhost:6060/debug/pprof/heap
func servePprof(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	log.Printf("rqserved: pprof on http://%s/debug/pprof/", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		log.Printf("rqserved: pprof server: %v", err)
	}
}
