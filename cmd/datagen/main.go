// Command datagen writes the synthesized SDRBench stand-in datasets to disk
// as raw .rqmf field files (readable by cmd/rqc and cmd/rqmodel).
//
// Usage:
//
//	datagen -dataset nyx -scale small -seed 42 -out ./data
//	datagen -list
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"rqm"
	"rqm/internal/datagen"
)

func main() {
	var (
		dataset = flag.String("dataset", "", "dataset to generate (empty = all)")
		scale   = flag.String("scale", "small", "tiny|small|medium")
		seed    = flag.Uint64("seed", 42, "generation seed")
		outDir  = flag.String("out", ".", "output directory")
		list    = flag.Bool("list", false, "list available datasets and exit")
	)
	flag.Parse()

	if *list {
		for _, n := range rqm.DatasetNames() {
			fmt.Println(n)
		}
		return
	}
	sc, err := parseScale(*scale)
	if err != nil {
		fatal(err)
	}
	names := rqm.DatasetNames()
	if *dataset != "" {
		names = []string{*dataset}
	}
	for _, name := range names {
		ds, err := rqm.GenerateDataset(name, *seed, sc)
		if err != nil {
			fatal(err)
		}
		for _, f := range ds.Fields {
			path := filepath.Join(*outDir, strings.ReplaceAll(f.Name, "/", "_")+".rqmf")
			out, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			n, err := f.WriteTo(out)
			if cerr := out.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s (%d bytes, dims %v)\n", path, n, f.Dims)
		}
	}
}

func parseScale(s string) (rqm.Scale, error) {
	switch s {
	case "tiny":
		return datagen.Tiny, nil
	case "small":
		return datagen.Small, nil
	case "medium":
		return datagen.Medium, nil
	}
	return 0, fmt.Errorf("unknown scale %q (want tiny|small|medium)", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
