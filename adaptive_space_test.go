package rqm_test

import (
	"bytes"
	"math"
	"testing"

	"rqm"
)

// quadContainer compresses the mixed composite field with the spatial
// partitioner tuned to emit chunks of differing sizes.
func quadContainer(t *testing.T) (*rqm.Field, []byte) {
	t.Helper()
	f, err := rqm.GenerateField("mixed", 42, rqm.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := rqm.NewWriter(&buf,
		rqm.WithStreamShape(f.Prec, f.Dims...),
		rqm.WithStreamFieldName(f.Name),
		rqm.WithAdaptiveBound(rqm.AdaptiveBound{TargetPSNR: 60}),
		rqm.WithPartitioner(rqm.VarianceQuadtree{SplitFactor: 1.1, MinRegionValues: 1024}))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteValues(f.Data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return f, buf.Bytes()
}

// TestReadStreamChunkVariableGeometry pins random access over a container
// whose chunks hold differing value counts: every indexed chunk — visited in
// reverse, independently — must decode to exactly its slice of the full
// decompress and honor its own recorded bound.
func TestReadStreamChunkVariableGeometry(t *testing.T) {
	f, blob := quadContainer(t)
	idx, err := rqm.ReadStreamIndex(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.Entries) < 2 {
		t.Fatalf("container has %d chunks, test needs variable geometry", len(idx.Entries))
	}
	sizes := map[int]bool{}
	starts := make([]int, len(idx.Entries))
	off := 0
	for i, e := range idx.Entries {
		sizes[e.Values] = true
		starts[i] = off
		off += e.Values
	}
	if len(sizes) < 2 {
		t.Fatalf("all chunks share one size %v; want non-uniform", sizes)
	}
	if off != f.Len() {
		t.Fatalf("index covers %d values, field holds %d", off, f.Len())
	}

	whole, err := rqm.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	rs := bytes.NewReader(blob)
	for i := len(idx.Entries) - 1; i >= 0; i-- {
		e := idx.Entries[i]
		vals, err := rqm.ReadStreamChunk(rs, e)
		if err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		if len(vals) != e.Values {
			t.Fatalf("chunk %d decoded %d values, index says %d", i, len(vals), e.Values)
		}
		for j, v := range vals {
			if math.Float64bits(v) != math.Float64bits(whole.Data[starts[i]+j]) {
				t.Fatalf("chunk %d value %d: random access %v, sequential %v",
					i, j, v, whole.Data[starts[i]+j])
			}
			if d := math.Abs(v - f.Data[starts[i]+j]); d > e.AbsBound*(1+1e-12) {
				t.Fatalf("chunk %d value %d: error %g breaks the chunk bound %g", i, j, d, e.AbsBound)
			}
		}
	}
}
