package rqm

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"

	"rqm/internal/codec"
	"rqm/internal/core"
	"rqm/internal/tuner"
)

// Engine is the serving-scale entry point of the package: one configured
// (codec, options) pair behind a compressor-agnostic surface, with
// context-aware worker-pool batch paths for multi-field datasets. A zero
// Engine is not usable; build one with NewEngine. Engines are safe for
// concurrent use — all configuration happens at construction.
type Engine struct {
	codec   Codec
	copts   codec.Options
	mopts   core.Options
	workers int
}

// EngineOption configures an Engine at construction.
type EngineOption func(*Engine) error

// WithCodec selects the backend (any registered or unregistered Codec).
// Note that Decompress routing of *other* codecs' containers still requires
// those codecs to be registered.
func WithCodec(c Codec) EngineOption {
	return func(e *Engine) error {
		if c == nil {
			return errors.New("rqm: WithCodec(nil)")
		}
		e.codec = c
		return nil
	}
}

// WithCodecName selects the backend by registered name
// ("prediction", "transform", ...).
func WithCodecName(name string) EngineOption {
	return func(e *Engine) error {
		c, err := codec.ByName(name)
		if err != nil {
			return err
		}
		e.codec = c
		return nil
	}
}

// WithErrorBound sets the error bound (in WithMode semantics).
func WithErrorBound(eb float64) EngineOption {
	return func(e *Engine) error {
		if !(eb > 0) {
			return fmt.Errorf("rqm: error bound must be positive, got %v", eb)
		}
		e.copts.ErrorBound = eb
		return nil
	}
}

// WithMode sets the error-bound interpretation (ABS, REL, PWREL).
func WithMode(m ErrorMode) EngineOption {
	return func(e *Engine) error {
		e.copts.Mode = m
		return nil
	}
}

// WithPredictor sets the prediction scheme (prediction codec only).
func WithPredictor(k PredictorKind) EngineOption {
	return func(e *Engine) error {
		e.copts.Predictor = k
		return nil
	}
}

// WithLossless sets the optional lossless stage (prediction codec only).
func WithLossless(l LosslessKind) EngineOption {
	return func(e *Engine) error {
		e.copts.Lossless = l
		return nil
	}
}

// WithRadius overrides the quantizer radius (prediction codec only).
func WithRadius(r int32) EngineOption {
	return func(e *Engine) error {
		e.copts.Radius = r
		return nil
	}
}

// WithConcurrency sets the batch worker count (default GOMAXPROCS).
func WithConcurrency(n int) EngineOption {
	return func(e *Engine) error {
		if n < 1 {
			return fmt.Errorf("rqm: concurrency must be at least 1, got %d", n)
		}
		e.workers = n
		return nil
	}
}

// WithModelOptions tunes the ratio-quality model used by Profile,
// SelectCodec, and CompressToBudget.
func WithModelOptions(mo ModelOptions) EngineOption {
	return func(e *Engine) error {
		e.mopts = mo
		return nil
	}
}

// NewEngine builds an Engine. Defaults: prediction codec, REL mode at 1e-3,
// Lorenzo predictor, no lossless stage, GOMAXPROCS batch workers.
func NewEngine(opts ...EngineOption) (*Engine, error) {
	e := &Engine{
		copts: codec.Options{Mode: REL, ErrorBound: 1e-3, Predictor: Lorenzo},
	}
	var err error
	if e.codec, err = codec.ByID(codec.IDPrediction); err != nil {
		return nil, err
	}
	for _, opt := range opts {
		if err := opt(e); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// Codec returns the configured backend.
func (e *Engine) Codec() Codec { return e.codec }

// Options returns the configured compression options.
func (e *Engine) Options() CodecOptions { return e.copts }

// Concurrency returns the effective batch worker count.
func (e *Engine) Concurrency() int {
	if e.workers > 0 {
		return e.workers
	}
	return runtime.GOMAXPROCS(0)
}

// Compress encodes one field into a sealed envelope container.
func (e *Engine) Compress(f *Field) (*CodecResult, error) {
	return codec.Compress(e.codec, f, e.copts)
}

// Decompress reconstructs a field from any container — produced by this
// engine, another codec's engine, the streaming writer, or the legacy
// function families — routing by inspection. Containers carrying the
// engine's own codec ID decode even when that codec is not registered;
// everything else resolves through the registry.
func (e *Engine) Decompress(data []byte) (*Field, error) {
	if codec.IsChunked(data) {
		return codec.DecompressChunkedWith(data, e.codec)
	}
	info, payload, err := codec.Open(data)
	if err != nil {
		return nil, err
	}
	if info.CodecID == e.codec.ID() {
		return e.codec.Decompress(payload)
	}
	c, err := codec.ByID(info.CodecID)
	if err != nil {
		return nil, err
	}
	return c.Decompress(payload)
}

// Profile builds the ratio-quality profile of f under the configured codec.
func (e *Engine) Profile(f *Field) (*Profile, error) {
	return e.codec.Profile(f, e.copts, e.mopts)
}

// CompressBatch compresses fields concurrently on the engine's worker pool.
// The result slice is index-aligned with fields. On the first error (or
// context cancellation) remaining work is abandoned and the partial results
// are returned alongside the error; entries that did not finish are nil.
func (e *Engine) CompressBatch(ctx context.Context, fields []*Field) ([]*CodecResult, error) {
	out := make([]*CodecResult, len(fields))
	err := e.runPool(ctx, len(fields), func(i int) error {
		if fields[i] == nil {
			return fmt.Errorf("rqm: batch field %d is nil", i)
		}
		res, err := codec.Compress(e.codec, fields[i], e.copts)
		if err != nil {
			return fmt.Errorf("rqm: batch field %d (%q): %w", i, fields[i].Name, err)
		}
		out[i] = res
		return nil
	})
	return out, err
}

// DecompressBatch reconstructs containers concurrently, routing each blob to
// its backend by inspection. Result semantics match CompressBatch.
func (e *Engine) DecompressBatch(ctx context.Context, blobs [][]byte) ([]*Field, error) {
	out := make([]*Field, len(blobs))
	err := e.runPool(ctx, len(blobs), func(i int) error {
		f, err := codec.Decompress(blobs[i])
		if err != nil {
			return fmt.Errorf("rqm: batch container %d: %w", i, err)
		}
		out[i] = f
		return nil
	})
	return out, err
}

// CompressToBudget compresses f so the sealed container fits budgetBytes
// (use-case B on the configured codec). p is the field's profile from
// Engine.Profile — reuse it across calls to pay the sampling pass once; pass
// nil to have one built for this call.
func (e *Engine) CompressToBudget(f *Field, p *Profile, budgetBytes int64, headroom float64, strict bool) (*MemoryPlan, error) {
	if p == nil {
		var err error
		if p, err = e.Profile(f); err != nil {
			return nil, err
		}
	}
	return tuner.CompressToBudget(f, p, e.codec, budgetBytes, headroom, strict, e.copts)
}

// NewStreamWriter starts a streaming compressor over w configured like this
// engine: same codec, compression options, model options, and worker count.
// Extra stream options (chunk size, shape, an AdaptiveBound policy, ...)
// apply on top. A REL-mode engine must also declare the stream-global value
// range (WithStreamValueRange) or go through NewFieldStreamWriter, which
// resolves it from the field; otherwise NewWriter fails with
// ErrStreamNeedsValueRange.
func (e *Engine) NewStreamWriter(w io.Writer, extra ...StreamOption) (*StreamWriter, error) {
	opts := []StreamOption{
		WithStreamCodec(e.codec),
		WithStreamCompression(e.copts),
		WithStreamModel(e.mopts),
		WithStreamWorkers(e.Concurrency()),
	}
	return NewWriter(w, append(opts, extra...)...)
}

// NewFieldStreamWriter starts a streaming compressor over w for one known
// field: the field's shape, name, and value range are recorded up front, so
// a REL-mode engine resolves its bound once against the whole field's range
// — the same absolute guarantee whole-buffer REL compression enforces. The
// caller still streams the samples (WriteField/WriteValues) and must Close.
func (e *Engine) NewFieldStreamWriter(w io.Writer, f *Field, extra ...StreamOption) (*StreamWriter, error) {
	if f == nil {
		return nil, errors.New("rqm: nil field")
	}
	lo, hi := f.ValueRange()
	opts := []StreamOption{
		WithStreamShape(f.Prec, f.Dims...),
		WithStreamFieldName(f.Name),
		WithStreamValueRange(lo, hi),
	}
	return e.NewStreamWriter(w, append(opts, extra...)...)
}

// SelectCodec ranks every registered codec for f at a PSNR target using the
// engine's configuration (codec auto-selection in one call).
func (e *Engine) SelectCodec(f *Field, targetPSNR float64) ([]CodecChoice, error) {
	return tuner.SelectCodec(f, codec.All(), targetPSNR, e.copts, e.mopts)
}

// runPool runs work(0..n-1) on the worker pool, honoring ctx and stopping at
// the first error.
func (e *Engine) runPool(ctx context.Context, n int, work func(int) error) error {
	if n == 0 {
		return ctx.Err()
	}
	workers := e.Concurrency()
	if workers > n {
		workers = n
	}
	poolCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if poolCtx.Err() != nil {
					continue // drain without working after cancellation
				}
				if err := work(i); err != nil {
					fail(err)
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case jobs <- i:
		case <-poolCtx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
