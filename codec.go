package rqm

import (
	"rqm/internal/codec"
	"rqm/internal/tuner"
)

// Codec abstraction: every compressor backend — built-in or third-party —
// implements one interface and registers into one process-wide registry, and
// every backend's output travels in one self-describing container envelope.
type (
	// Codec is one error-bounded compression backend
	// (Compress / Decompress / Profile / Name / ID).
	Codec = codec.Codec
	// CodecID is a codec's stable wire identifier inside the envelope.
	CodecID = codec.ID
	// CodecOptions is the codec-agnostic compression configuration; fields a
	// backend does not understand are ignored.
	CodecOptions = codec.Options
	// CodecResult is a sealed envelope container plus codec-agnostic
	// statistics.
	CodecResult = codec.Result
	// CodecStats describes one codec run with sizes measured on the sealed
	// container, comparable across backends.
	CodecStats = codec.Stats
	// ContainerInfo describes a container (codec, field shape, payload size)
	// without decoding it.
	ContainerInfo = codec.Info
	// CodecChoice is one codec's modeled performance at a quality target.
	CodecChoice = tuner.CodecChoice
)

// Built-in codec IDs and names.
const (
	CodecPrediction = codec.IDPrediction
	CodecTransform  = codec.IDTransform
	// CodecPredictionILV / CodecPredictionTANS are the prediction pipeline
	// with the interleaved multi-stream Huffman and tANS entropy stages.
	CodecPredictionILV  = codec.IDPredictionILV
	CodecPredictionTANS = codec.IDPredictionTANS

	CodecPredictionName     = codec.PredictionName
	CodecTransformName      = codec.TransformName
	CodecPredictionILVName  = codec.PredictionILVName
	CodecPredictionTANSName = codec.PredictionTANSName

	// CodecFirstExternalID is the lowest wire ID RegisterCodec accepts;
	// lower IDs are reserved for built-in backends.
	CodecFirstExternalID = codec.FirstExternalID
)

// Typed container errors; match with errors.Is. Every Decompress/Inspect
// parse failure wraps exactly one of these.
var (
	// ErrTruncated marks a container shorter than its header or payload
	// declares.
	ErrTruncated = codec.ErrTruncated
	// ErrBadMagic marks data that is not any known container format.
	ErrBadMagic = codec.ErrBadMagic
	// ErrUnsupportedVersion marks an envelope version this build cannot read.
	ErrUnsupportedVersion = codec.ErrUnsupportedVersion
	// ErrUnknownCodec marks an envelope whose codec ID has no registration.
	ErrUnknownCodec = codec.ErrUnknownCodec
	// ErrCorrupt marks a structurally invalid container header.
	ErrCorrupt = codec.ErrCorrupt
)

// RegisterCodec adds a backend to the process-wide registry, making it
// reachable by Decompress routing, CodecByName/CodecByID, SelectCodec, and
// the Engine. Registration fails when the name or wire ID is taken.
func RegisterCodec(c Codec) error { return codec.Register(c) }

// Codecs returns the registered codecs sorted by wire ID.
func Codecs() []Codec { return codec.All() }

// CodecNames returns the registered codec names sorted by wire ID.
func CodecNames() []string { return codec.Names() }

// CodecByName looks up a registered codec ("prediction", "transform", ...).
func CodecByName(name string) (Codec, error) { return codec.ByName(name) }

// CodecByID looks up a registered codec by wire ID.
func CodecByID(id CodecID) (Codec, error) { return codec.ByID(id) }

// CompressWith runs one codec on a field and seals the output in the
// envelope; Decompress reads it back regardless of the backend.
func CompressWith(c Codec, f *Field, opts CodecOptions) (*CodecResult, error) {
	return codec.Compress(c, f, opts)
}

// Inspect describes any container — enveloped or legacy — without decoding
// its payload.
func Inspect(data []byte) (*ContainerInfo, error) { return codec.Inspect(data) }

// SelectCodec ranks every registered codec at a PSNR target: one sampling
// pass per backend, then the model solves each backend's error bound for the
// target and orders candidates by modeled bit-rate (best ratio first). The
// winner's Profile and ErrorBound are ready to compress with.
func SelectCodec(f *Field, targetPSNR float64, copts CodecOptions, mopts ModelOptions) ([]CodecChoice, error) {
	return tuner.SelectCodec(f, codec.All(), targetPSNR, copts, mopts)
}
