package rqm_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"os"
	"testing"

	"rqm"
)

// The two containers under testdata/ were written by the build immediately
// before the entropy-stage change (serial Huffman, container version 1) from
// datagen.SpectralField("compat", float64, 64×64×16, decay -1.5, eb ABS 1e-3):
// one whole-buffer envelope and one chunked stream (16384-value chunks, 2
// workers). The hashes pin the exact decoded float64 stream, so any change to
// legacy decode paths — container parse, codebook handling, kernel order of
// operations — fails loudly here, not in an archive three years from now.
const (
	compatEnvelopeSHA = "95fb642ffa3d7620feeced52a5303f61e6b0f2d833c282931644d05440881616"
	compatChunkedSHA  = "994534ffbdb3c4bf7d53c6526f72359828677f9c40a50da0e8a7e01d0b31bab1"
	compatLen         = 64 * 64 * 16
)

func decodedSHA(f *rqm.Field) string {
	h := sha256.New()
	var b [8]byte
	for _, v := range f.Data {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		h.Write(b[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestPrePR7ContainersDecodeByteIdentically is the backward-compatibility
// gate for the entropy-stage work: containers written before the version 2
// container and the new codec IDs existed must keep decoding to the exact
// same values through every read path.
func TestPrePR7ContainersDecodeByteIdentically(t *testing.T) {
	cases := []struct {
		file, want string
	}{
		{"testdata/pre_pr7_envelope.rqz", compatEnvelopeSHA},
		{"testdata/pre_pr7_chunked.rqz", compatChunkedSHA},
	}
	for _, tc := range cases {
		blob, err := os.ReadFile(tc.file)
		if err != nil {
			t.Fatalf("golden container missing: %v", err)
		}
		f, err := rqm.Decompress(blob)
		if err != nil {
			t.Fatalf("%s: %v", tc.file, err)
		}
		if f.Len() != compatLen {
			t.Fatalf("%s: decoded %d values, want %d", tc.file, f.Len(), compatLen)
		}
		if got := decodedSHA(f); got != tc.want {
			t.Errorf("%s: decoded stream hash %s, want %s", tc.file, got, tc.want)
		}
	}

	// The chunked container must also decode identically through the
	// concurrent streaming reader.
	blob, err := os.ReadFile("testdata/pre_pr7_chunked.rqz")
	if err != nil {
		t.Fatal(err)
	}
	r, err := rqm.NewReader(bytes.NewReader(blob), rqm.WithStreamReaderWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	f, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if got := decodedSHA(f); got != compatChunkedSHA {
		t.Errorf("streaming reader: decoded stream hash %s, want %s", got, compatChunkedSHA)
	}
}
