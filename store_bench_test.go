package rqm_test

import (
	"io"
	"testing"
	"time"

	"rqm"
	"rqm/internal/store"
)

// storeBenchSetup builds an on-disk store, a field, and its profile.
func storeBenchSetup(b *testing.B) (*store.Store, *rqm.Engine, *rqm.Field, *store.Manifest) {
	b.Helper()
	st, err := store.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	g, err := rqm.GenerateField("nyx/temperature", 3, rqm.ScaleSmall)
	if err != nil {
		b.Fatal(err)
	}
	f, err := rqm.FieldFromData("bench", rqm.Float64, g.Data, g.Dims...)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := rqm.NewEngine(rqm.WithMode(rqm.REL), rqm.WithErrorBound(1e-3))
	if err != nil {
		b.Fatal(err)
	}
	p, err := eng.Profile(f)
	if err != nil {
		b.Fatal(err)
	}
	man := &store.Manifest{
		CreatedAt:     time.Now().UTC(),
		PrecBits:      f.Prec.Bits(),
		Dims:          append([]int(nil), f.Dims...),
		Codec:         eng.Codec().Name(),
		Predictor:     "lorenzo",
		Mode:          "rel",
		ErrorBound:    1e-3,
		ContentHash:   "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef",
		OriginalBytes: f.OriginalBytes(),
		Profile:       store.NewProfileRecord(p),
	}
	return st, eng, f, man
}

// BenchmarkStoreRoundTrip measures one archive round trip: a crash-safe put
// (stream-compress + trailer-index copy + manifest commit) followed by a
// random-access read of one interior chunk range — the store's two hot
// paths.
func BenchmarkStoreRoundTrip(b *testing.B) {
	st, eng, f, man := storeBenchSetup(b)
	b.SetBytes(f.OriginalBytes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := *man // Put completes the manifest in place; keep the template
		if _, err := st.Put("bench", func(w io.Writer) (*store.Manifest, error) {
			sw, err := eng.NewFieldStreamWriter(w, f, rqm.WithChunkSize(64*1024))
			if err != nil {
				return nil, err
			}
			if err := sw.WriteValues(f.Data); err != nil {
				return nil, err
			}
			return &m, sw.Close()
		}); err != nil {
			b.Fatal(err)
		}
		if _, err := st.ReadRange("bench", int64(f.Len()/2), 4096); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreScrub measures one full shallow scrub of the archive — the
// cost of a background integrity pass: manifest parse, trailer-vs-manifest
// index reconciliation, and a CRC walk over every chunk. This is the
// recurring price of the integrity layer, so it is pinned in the bench
// baseline alongside the round trip.
func BenchmarkStoreScrub(b *testing.B) {
	st, eng, f, man := storeBenchSetup(b)
	if _, err := st.Put("bench", func(w io.Writer) (*store.Manifest, error) {
		sw, err := eng.NewFieldStreamWriter(w, f, rqm.WithChunkSize(64*1024))
		if err != nil {
			return nil, err
		}
		if err := sw.WriteValues(f.Data); err != nil {
			return nil, err
		}
		return man, sw.Close()
	}); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(f.OriginalBytes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := st.Scrub(store.ScrubOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Issues) != 0 {
			b.Fatalf("scrub found issues on a clean archive: %+v", rep.Issues)
		}
	}
}
