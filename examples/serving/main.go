// Example serving: the profile-cached compression service end to end — an
// in-process rqserved instance, the Go client, and the "profile once, ask
// forever" pattern: one sampling pass buys unlimited O(sample) ratio/PSNR
// answers and inverse solves, no compression runs.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net/http/httptest"

	"rqm"
	"rqm/client"
	"rqm/internal/service"
)

func main() {
	// A real deployment runs `rqserved -addr :8080`; the example hosts the
	// same handler in-process.
	svc, err := service.New(service.Config{})
	if err != nil {
		log.Fatal(err)
	}
	srv := httptest.NewServer(svc)
	defer srv.Close()
	c, err := client.New(srv.URL)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	field, err := rqm.GenerateField("nyx/temperature", 42, rqm.ScaleSmall)
	if err != nil {
		log.Fatal(err)
	}
	var body bytes.Buffer
	if _, err := field.WriteTo(&body); err != nil {
		log.Fatal(err)
	}

	// One upload, one sampling pass: the profile is now cached server-side.
	prof, err := c.Profile(ctx, bytes.NewReader(body.Bytes()), client.ProfileParams{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled %q: id %s, %d values, sampling pass %.2f ms\n",
		field.Name, prof.Profile, prof.N, prof.BuildMs)

	// Every question below is answered from the cache — no upload, no
	// compression run.
	for _, rel := range []float64{1e-4, 1e-3, 1e-2} {
		est, err := c.Estimate(ctx, prof.Profile, rel, "rel")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  eb %g (rel): ratio %6.2fx  PSNR %6.2f dB  SSIM %.5f\n",
			rel, est.Ratio, est.PSNR, est.SSIM)
	}
	sol, err := c.Solve(ctx, prof.Profile, client.SolveTarget{Kind: "psnr", Value: 70})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  70 dB target: eb %.6g (abs) -> modeled ratio %.2fx\n", sol.AbsEB, sol.Ratio)

	// Compress at the solved bound through the same service.
	var container bytes.Buffer
	info, err := c.Compress(ctx, bytes.NewReader(body.Bytes()), &container, client.CompressParams{
		Mode: "abs", ErrorBound: sol.AbsEB,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compressed at the solved bound: %d -> %d bytes (server-reported %.2fx, codec %s)\n",
		body.Len(), container.Len(), info.Ratio, info.Codec)

	// The cache hit is visible in the service metrics.
	m, err := c.Metrics(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("metrics: %d requests, %d sampling pass(es), %d cache answers (estimates+solves)\n",
		m.Requests, m.ProfileBuilds, m.Estimates+m.Solves)
}
