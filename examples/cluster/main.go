// Example cluster: the cluster serving tier end to end — three in-process
// rqserved shards behind one consistent-hash router (R=2 replication),
// exactly the multi-node shape of the paper's headline scenario. The
// walkthrough puts datasets through the router, kills a shard and reads
// straight through the failover, then runs a rebalance and watches
// replication heal by raw container copy: byte-identical migration, no
// recompression, generations preserved.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"os"

	"rqm"
	"rqm/client"
	"rqm/internal/router"
	"rqm/internal/service"
	"rqm/internal/store"
)

// shard is one in-process rqserved equivalent. A real deployment runs
// `rqserved -addr :808N -store-dir /var/lib/rqm/N` per node.
type shard struct {
	srv *httptest.Server
	dir string
}

func newShard() (*shard, error) {
	dir, err := os.MkdirTemp("", "rqm-cluster-*")
	if err != nil {
		return nil, err
	}
	st, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	svc, err := service.New(service.Config{Store: st})
	if err != nil {
		return nil, err
	}
	return &shard{srv: httptest.NewServer(svc), dir: dir}, nil
}

func main() {
	// --- 1. Three shards, one router -----------------------------------
	// Real deployment: `rqrouter -addr :9090 -shards http://s1:8080,...
	// -replicas 2`. The router is stateless — run several against the same
	// shard list for HA.
	var shards []*shard
	var urls []string
	for i := 0; i < 3; i++ {
		s, err := newShard()
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(s.dir)
		defer s.srv.Close()
		shards = append(shards, s)
		urls = append(urls, s.srv.URL)
	}
	rt, err := router.New(router.Config{Shards: urls, Replicas: 2, ProbeInterval: -1})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()
	front := httptest.NewServer(rt)
	defer front.Close()

	// The same client that talks to a single shard talks to the router.
	c, err := client.New(front.URL)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// --- 2. Put datasets through the router ----------------------------
	// Each put fans out to its 2 ring-placed replicas and needs a write
	// quorum; the response is the shard's own answer plus replica headers.
	names := []string{"nyx-temp", "nyx-dens", "cesm-ts", "hurricane-u"}
	for i, name := range names {
		g, err := rqm.GenerateField("nyx/temperature", uint64(i+1), rqm.ScaleSmall)
		if err != nil {
			log.Fatal(err)
		}
		f, err := rqm.FieldFromData(name, rqm.Float64, g.Data, g.Dims...)
		if err != nil {
			log.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := f.WriteTo(&buf); err != nil {
			log.Fatal(err)
		}
		info, err := c.PutDataset(ctx, name, &buf, client.PutDatasetParams{
			Mode: "rel", ErrorBound: 1e-3, ChunkValues: 4096,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("put %-12s %8d values  ratio %6.2fx  gen %d\n",
			info.Name, info.TotalValues, info.Ratio, info.Generation)
	}

	// Probing is disabled above (ProbeInterval: -1) so the walkthrough is
	// deterministic; sweep once by hand so status shows dataset counts. A
	// real rqrouter probes on its own every -probe-interval.
	rt.ProbeNow(ctx)
	status, err := c.RouterStatus(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncluster: %d/%d shards healthy, R=%d (quorum %d)\n",
		status.Healthy, len(status.Shards), status.Replicas, status.Quorum)
	for _, sh := range status.Shards {
		fmt.Printf("  %-28s healthy=%-5v datasets=%d\n", sh.URL, sh.Healthy, sh.Datasets)
	}

	// --- 3. Kill a shard; reads keep working ---------------------------
	// Every dataset has a second replica; the router fails the read over
	// within the same request. Nothing for the caller to do.
	fmt.Printf("\nkilling shard %s\n", urls[0])
	shards[0].srv.Close()
	for _, name := range names {
		var out bytes.Buffer
		if err := c.GetDataset(ctx, name, &out); err != nil {
			log.Fatalf("read %s after shard kill: %v", name, err)
		}
		fmt.Printf("read %-12s -> %7d bytes (failover transparent)\n", name, out.Len())
	}
	m, err := c.RouterMetricsSnapshot(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("router counters: %d gets proxied, %d failovers\n", m.ProxiedGets, m.Failovers)

	// --- 4. Rebalance: replication heals by raw copy -------------------
	// Datasets that kept only one live replica are re-replicated onto
	// their ring successors by streaming the raw container — the bytes
	// move verbatim (no decompression, no recompression) and the manifest
	// version (created_at, generation) is preserved bit for bit.
	rep, err := c.Rebalance(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrebalance: %d datasets over %d live shards — %d copied (%d bytes moved), %d already placed, %d failed\n",
		rep.Datasets, rep.ShardsLive, rep.Copied, rep.BytesMoved, rep.Skipped, rep.Failed)

	rt.ProbeNow(ctx)
	status, err = c.RouterStatus(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, sh := range status.Shards {
		fmt.Printf("  %-28s healthy=%-5v datasets=%d\n", sh.URL, sh.Healthy, sh.Datasets)
	}

	// A second pass moves nothing: rebalance is idempotent at the byte
	// level, so running it on a timer is safe.
	rep, err = c.Rebalance(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("second pass: %d copied, %d bytes moved (idempotent)\n", rep.Copied, rep.BytesMoved)
}
