// Adaptive-space: compress a field whose statistics vary across space — a
// smooth large-scale mode with a turbulent pocket — two ways at the same PSNR
// target, and compare. Fixed slabs solve one global bound from the
// ratio-quality model; the variance quadtree recursively splits the domain
// where the variance profile is uneven and lets the model solve each region's
// bound against its own range, spending bits only where the field is hard.
// Same model, same target, measurably smaller container.
package main

import (
	"bytes"
	"fmt"
	"log"

	"rqm"
)

// compress runs one adaptive-PSNR compression pass and reports the achieved
// ratio plus the PSNR measured against the original.
func compress(field *rqm.Field, target float64, extra ...rqm.StreamOption) (ratio, psnr float64, chunks int) {
	opts := append([]rqm.StreamOption{
		rqm.WithStreamShape(field.Prec, field.Dims...),
		rqm.WithStreamFieldName(field.Name),
		rqm.WithAdaptiveBound(rqm.AdaptiveBound{TargetPSNR: target}),
	}, extra...)
	var container bytes.Buffer
	w, err := rqm.NewWriter(&container, opts...)
	if err != nil {
		log.Fatal(err)
	}
	if err := w.WriteValues(field.Data); err != nil {
		log.Fatal(err)
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	back, err := rqm.Decompress(container.Bytes())
	if err != nil {
		log.Fatal(err)
	}
	psnr, err = rqm.PSNR(field, back)
	if err != nil {
		log.Fatal(err)
	}
	st := w.Stats()
	return st.Ratio, psnr, st.Chunks
}

func main() {
	// The "mixed" generator composites a smooth spectral background with a
	// localized turbulent cube — exactly the spatial non-uniformity fixed
	// slabs cannot exploit.
	field, err := rqm.GenerateField("mixed", 42, rqm.ScaleSmall)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("field %q: %v values\n\n", field.Name, field.Dims)

	for _, target := range []float64{55, 65, 75} {
		fixedRatio, fixedPSNR, _ := compress(field, target)
		quadRatio, quadPSNR, regions := compress(field, target,
			rqm.WithPartitioner(rqm.VarianceQuadtree{}))
		fmt.Printf("target %.0f dB:\n", target)
		fmt.Printf("  fixed slabs        %6.2fx at %.1f dB\n", fixedRatio, fixedPSNR)
		fmt.Printf("  variance quadtree  %6.2fx at %.1f dB  (%d regions, %.2fx the fixed ratio)\n",
			quadRatio, quadPSNR, regions, quadRatio/fixedRatio)
	}

	fmt.Println("\nThe same split is available end to end: `rqc compress -adaptive-space`,")
	fmt.Println("POST /v1/compress?adaptive-space=1, and dataset recompaction with")
	fmt.Println("?adaptive-space=1 — the store then records the partitioner in the")
	fmt.Println("manifest so later recompactions reproduce it.")
}
