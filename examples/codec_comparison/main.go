// Codec comparison (the paper's future-work extension): the ratio-quality
// model covers every registered codec through one interface, so cross-family
// codec selection — "which backend gives the best ratio at my quality
// target?" — is a pair of cheap sampling passes (rqm.SelectCodec) instead of
// full compression runs per candidate.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"rqm"
)

func main() {
	field, err := rqm.GenerateField("qmcpack/einspline", 42, rqm.ScaleSmall)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("field %q (%v), oscillatory orbital data\n", field.Name, field.Dims)
	fmt.Printf("registered codecs: %v\n\n", rqm.CodecNames())

	// Codec auto-selection in one call: profile every registered backend,
	// solve each one's bound for the PSNR target, rank by modeled bits.
	const targetPSNR = 70.0
	choices, err := rqm.SelectCodec(field, targetPSNR,
		rqm.CodecOptions{Predictor: rqm.Lorenzo}, rqm.ModelOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model's pick at %.0f dB: %s (%.3f bits/value at eb=%.4g)\n\n",
		targetPSNR, choices[0].Codec.Name(), choices[0].Estimate.TotalBitRate, choices[0].ErrorBound)

	// Per-bound comparison of the two built-in families, model vs measured.
	pred, err := rqm.CodecByName(rqm.CodecPredictionName)
	if err != nil {
		log.Fatal(err)
	}
	transf, err := rqm.CodecByName(rqm.CodecTransformName)
	if err != nil {
		log.Fatal(err)
	}
	copts := rqm.CodecOptions{Predictor: rqm.Lorenzo, Mode: rqm.ABS}
	predProf, err := pred.Profile(field, copts, rqm.ModelOptions{})
	if err != nil {
		log.Fatal(err)
	}
	trProf, err := transf.Profile(field, copts, rqm.ModelOptions{SampleRate: 0.01, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "relEB\tpred est bits\ttransf est bits\tmodel pick\tpred meas bits\ttransf meas bits\tmeasured pick")
	agree := 0
	rels := []float64{1e-4, 1e-3, 1e-2}
	for _, rel := range rels {
		eb := rel * predProf.Range
		pe := predProf.EstimateAt(eb).TotalBitRate
		te := trProf.EstimateAt(eb).TotalBitRate
		modelPick := pred.Name()
		if te < pe {
			modelPick = transf.Name()
		}

		// Verify with real runs through the unified surface.
		copts.ErrorBound = eb
		pres, err := rqm.CompressWith(pred, field, copts)
		if err != nil {
			log.Fatal(err)
		}
		tres, err := rqm.CompressWith(transf, field, copts)
		if err != nil {
			log.Fatal(err)
		}
		pm := pres.Stats.BitRate
		tm := tres.Stats.BitRate
		measPick := pred.Name()
		if tm < pm {
			measPick = transf.Name()
		}
		if measPick == modelPick {
			agree++
		}
		fmt.Fprintf(tw, "%.0e\t%.3f\t%.3f\t%s\t%.3f\t%.3f\t%s\n",
			rel, pe, te, modelPick, pm, tm, measPick)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmodel agreed with measurement on %d/%d bounds\n", agree, len(rels))

	// Both codecs guarantee the bound and share one container surface:
	// compress with the transform codec, decompress with the routed
	// rqm.Decompress — no codec flag anywhere.
	eb := 1e-3 * predProf.Range
	copts.ErrorBound = eb
	tres, err := rqm.CompressWith(transf, field, copts)
	if err != nil {
		log.Fatal(err)
	}
	info, err := rqm.Inspect(tres.Bytes)
	if err != nil {
		log.Fatal(err)
	}
	back, err := rqm.Decompress(tres.Bytes)
	if err != nil {
		log.Fatal(err)
	}
	if err := rqm.VerifyErrorBound(field, back, rqm.ABS, eb); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("envelope routed to codec %q; bound verified at eb=%.4g (%d values)\n",
		info.CodecName, eb, field.Len())
}
