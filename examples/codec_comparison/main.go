// Codec comparison (the paper's future-work extension): the ratio-quality
// model covers both the prediction-based pipeline and the transform-based
// (ZFP-style) codec, so codec selection across families becomes a pair of
// cheap estimates instead of two full compression runs.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"rqm"
)

func main() {
	field, err := rqm.GenerateField("qmcpack/einspline", 42, rqm.ScaleSmall)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("field %q (%v), oscillatory orbital data\n\n", field.Name, field.Dims)

	// One profile per codec family — sampling only, no compression.
	predProf, err := rqm.NewProfile(field, rqm.Lorenzo, rqm.ModelOptions{})
	if err != nil {
		log.Fatal(err)
	}
	trProf, err := rqm.TransformProfile(field, 0.01, 42, rqm.ModelOptions{})
	if err != nil {
		log.Fatal(err)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "relEB\tpred est bits\ttransf est bits\tmodel pick\tpred meas bits\ttransf meas bits\tmeasured pick")
	agree := 0
	rels := []float64{1e-4, 1e-3, 1e-2}
	for _, rel := range rels {
		eb := rel * predProf.Range
		pe := predProf.EstimateAt(eb).HuffmanBitRate
		te := trProf.EstimateAt(eb).HuffmanBitRate
		modelPick := "prediction"
		if te < pe {
			modelPick = "transform"
		}

		// Verify with real runs.
		pres, err := rqm.Compress(field, rqm.CompressOptions{
			Predictor: rqm.Lorenzo, Mode: rqm.ABS, ErrorBound: eb,
		})
		if err != nil {
			log.Fatal(err)
		}
		tres, err := rqm.TransformCompress(field, rqm.TransformOptions{ErrorBound: eb})
		if err != nil {
			log.Fatal(err)
		}
		pm := pres.Stats.BitRateHuffman
		tm := float64(tres.Stats.PayloadBits) / float64(field.Len())
		measPick := "prediction"
		if tm < pm {
			measPick = "transform"
		}
		if measPick == modelPick {
			agree++
		}
		fmt.Fprintf(tw, "%.0e\t%.3f\t%.3f\t%s\t%.3f\t%.3f\t%s\n",
			rel, pe, te, modelPick, pm, tm, measPick)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmodel agreed with measurement on %d/%d bounds\n", agree, len(rels))

	// Both codecs guarantee the bound; show it once.
	eb := 1e-3 * predProf.Range
	tres, err := rqm.TransformCompress(field, rqm.TransformOptions{ErrorBound: eb})
	if err != nil {
		log.Fatal(err)
	}
	back, err := rqm.TransformDecompress(tres.Bytes)
	if err != nil {
		log.Fatal(err)
	}
	if err := rqm.VerifyErrorBound(field, back, rqm.ABS, eb); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transform codec bound verified at eb=%.4g (%d values)\n", eb, field.Len())
}
