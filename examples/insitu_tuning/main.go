// In-situ compression optimization (paper use-case §IV-C): assign each RTM
// timestep its own error bound so the stack meets an aggregate quality
// target with fewer bits than a single shared bound — the fine-grained
// tuning that trial-and-error cannot afford (combinations grow
// exponentially with partitions).
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"text/tabwriter"

	"rqm"
)

func main() {
	ds, err := rqm.GenerateDataset("rtm", 42, rqm.ScaleSmall)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RTM stack: %d snapshots\n", len(ds.Fields))

	var profiles []*rqm.Profile
	for _, snap := range ds.Fields {
		p, err := rqm.NewProfile(snap, rqm.Interpolation, rqm.ModelOptions{UseLossless: true})
		if err != nil {
			log.Fatal(err)
		}
		profiles = append(profiles, p)
	}

	const targetPSNR = 60.0
	allocs, err := rqm.OptimizePartitionsForPSNR(profiles, targetPSNR)
	if err != nil {
		log.Fatal(err)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "timestep\toptimized eb\tbits/value\tmodeled PSNR")
	var optBits, n float64
	for i, a := range allocs {
		optBits += float64(profiles[i].N) * a.Estimate.TotalBitRate
		n += float64(profiles[i].N)
		fmt.Fprintf(tw, "%d\t%.4g\t%.3f\t%.2f\n",
			i+1, a.ErrorBound, a.Estimate.TotalBitRate, a.Estimate.PSNR)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	optBits /= n

	// Uniform baseline: one shared bound reaching the same aggregate
	// quality, found by bisection on the model.
	globalRange := 0.0
	for _, p := range profiles {
		if p.Range > globalRange {
			globalRange = p.Range
		}
	}
	targetVar := globalRange * globalRange / math.Pow(10, targetPSNR/10)
	lo, hi := globalRange*1e-12, globalRange
	for i := 0; i < 60; i++ {
		mid := math.Sqrt(lo * hi)
		var v float64
		for _, p := range profiles {
			v += float64(p.N) * p.EstimateAt(mid).ErrVar
		}
		if v/n <= targetVar {
			lo = mid
		} else {
			hi = mid
		}
	}
	var uniformBits float64
	for _, p := range profiles {
		uniformBits += float64(p.N) * p.EstimateAt(lo).TotalBitRate
	}
	uniformBits /= n

	fmt.Printf("\naggregate target: %.0f dB PSNR over the stacked image\n", targetPSNR)
	fmt.Printf("per-timestep bounds: %.3f bits/value\n", optBits)
	fmt.Printf("single shared bound: %.3f bits/value\n", uniformBits)
	if optBits > 0 {
		fmt.Printf("fine-grained tuning saves %.1f%% bits at the same quality\n",
			100*(uniformBits-optBits)/uniformBits)
	}
}
