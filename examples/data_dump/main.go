// End-to-end data management (paper §V-F): dump a simulation snapshot
// sequence through the HDF5-like chunked container with the lossy filter,
// choosing each snapshot's error bound in situ with the ratio-quality
// model, and report the parallel dump-time breakdown on the simulated
// 128-rank cluster.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"rqm"
	"rqm/internal/h5"
)

func main() {
	const targetPSNR = 56.0
	ds, err := rqm.GenerateDataset("rtm", 42, rqm.ScaleSmall)
	if err != nil {
		log.Fatal(err)
	}
	machine := rqm.DefaultCluster()
	dir, err := os.MkdirTemp("", "rqm-dump-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	fmt.Printf("dumping %d snapshots, target PSNR %.0f dB, %d simulated ranks\n\n",
		len(ds.Fields), targetPSNR, machine.Ranks)

	var reports []rqm.DumpReport
	for _, snap := range ds.Fields {
		// In-situ optimization: profile + inverse solve (this is the part
		// trial-and-error replaces with several full compression runs).
		optStart := time.Now()
		prof, err := rqm.NewProfile(snap, rqm.Interpolation, rqm.ModelOptions{UseLossless: true})
		if err != nil {
			log.Fatal(err)
		}
		eb, err := prof.ErrorBoundForPSNR(targetPSNR + 3) // guard band
		if err != nil {
			log.Fatal(err)
		}
		optCPU := time.Since(optStart)

		// Write the snapshot through the chunked container with the lossy
		// filter (real bytes on a real file).
		compStart := time.Now()
		path := filepath.Join(dir, snap.Name[4:]+".rqh5")
		w, err := h5.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		chunk := []int{snap.Dims[0], snap.Dims[1], snap.Dims[2] / 4}
		stored, err := w.WriteDataset(snap.Name, snap, h5.DatasetOptions{
			ChunkDims: chunk,
			Filter:    h5.FilterLossy,
			Compressor: rqm.CompressOptions{
				Predictor: rqm.Interpolation, Mode: rqm.ABS, ErrorBound: eb,
				Lossless: rqm.LosslessFlate,
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := w.Close(); err != nil {
			log.Fatal(err)
		}
		compCPU := time.Since(compStart)

		// Read back and verify the quality end to end.
		rf, err := h5.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		back, err := rf.ReadDataset(snap.Name)
		rf.Close()
		if err != nil {
			log.Fatal(err)
		}
		psnr, err := rqm.PSNR(snap, back)
		if err != nil {
			log.Fatal(err)
		}

		r := machine.Dump(snap.Name, optCPU, compCPU, stored, snap.Len(), psnr)
		reports = append(reports, r)
		fmt.Println(" ", r)
	}

	var total, max time.Duration
	var bytes int64
	for _, r := range reports {
		t := r.Total()
		total += t
		if t > max {
			max = t
		}
		bytes += r.BytesWritten
	}
	fmt.Printf("\ntotal dump wall time: %.3fs (max single snapshot %.3fs)\n",
		total.Seconds(), max.Seconds())
	fmt.Printf("bytes written: %.2f MiB, baseline without compression: %.2f MiB\n",
		float64(bytes)/(1<<20), float64(ds.TotalBytes())/(1<<20))
}
