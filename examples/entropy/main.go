// Entropy-stage walkthrough: compress one field with all three entropy
// codecs — serial Huffman, interleaved multi-stream Huffman, and tANS —
// and compare compression ratio, decode throughput, and the ratio-quality
// model's predicted size against the realized container.
//
// What to expect: interleaved matches serial's ratio (same codebook, a few
// framing bytes) while decoding substantially faster; tANS shades the
// ratio on skewed histograms because it codes fractional bits/symbol,
// which the ANS-entropy model extension predicts where the Huffman Eq. 1
// model is clamped at 1 bit/value.
package main

import (
	"fmt"
	"log"
	"time"

	"rqm"
)

func main() {
	// A smooth field under a mid bound gives a skewed (p0-heavy) code
	// histogram — the regime that separates the three stages.
	field, err := rqm.GenerateField("cesm/TS", 42, rqm.ScaleSmall)
	if err != nil {
		log.Fatal(err)
	}
	lo, hi := field.ValueRange()
	eb := 2e-3 * (hi - lo)
	n := float64(field.Len())
	fmt.Printf("field %q: %v values, ABS bound %.4g\n\n", field.Name, field.Dims, eb)

	fmt.Printf("%-16s %10s %12s %14s %14s\n",
		"codec", "ratio", "decode MB/s", "model b/val", "actual b/val")
	for _, name := range []string{
		rqm.CodecPredictionName,
		rqm.CodecPredictionILVName,
		rqm.CodecPredictionTANSName,
	} {
		c, err := rqm.CodecByName(name)
		if err != nil {
			log.Fatal(err)
		}
		copts := rqm.CodecOptions{Mode: rqm.ABS, ErrorBound: eb}

		// Model first: one sampling pass, then the size prediction. The
		// tANS codec profiles with the ANS-entropy model, so its estimate
		// is allowed below 1 bit/value.
		prof, err := c.Profile(field, copts, rqm.ModelOptions{})
		if err != nil {
			log.Fatal(err)
		}
		est := prof.EstimateAt(eb)

		res, err := rqm.CompressWith(c, field, copts)
		if err != nil {
			log.Fatal(err)
		}

		// Decode repeatedly for a stable throughput number, verifying the
		// bound once.
		dec, err := rqm.Decompress(res.Bytes)
		if err != nil {
			log.Fatal(err)
		}
		if err := rqm.VerifyErrorBound(field, dec, rqm.ABS, eb*(1+1e-12)); err != nil {
			log.Fatal(err)
		}
		const rounds = 10
		start := time.Now()
		for i := 0; i < rounds; i++ {
			if _, err := rqm.Decompress(res.Bytes); err != nil {
				log.Fatal(err)
			}
		}
		mbps := float64(field.OriginalBytes()) * rounds / time.Since(start).Seconds() / 1e6

		actual := float64(res.Stats.CompressedBytes) * 8 / n
		fmt.Printf("%-16s %9.2fx %12.0f %14.3f %14.3f\n",
			name, res.Stats.Ratio, mbps, est.TotalBitRate, actual)
	}

	fmt.Println("\nNotes:")
	fmt.Println("  - prediction-ilv matches prediction's ratio: same canonical codebook,")
	fmt.Println("    the symbols just split round-robin over 4 streams decoded in one loop.")
	fmt.Println("  - prediction-tans can code below 1 bit/value on skewed histograms; its")
	fmt.Println("    model column uses the ANS (Shannon-entropy) size model, the others Eq. 1.")
}
