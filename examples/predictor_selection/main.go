// Predictor selection (paper use-case §IV-A): profile every candidate
// predictor once, let the model rank them, and verify the pick against real
// compression runs — without the per-bound trial-and-error the paper
// replaces.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"rqm"
)

func main() {
	// RTM wavefields are where the paper demonstrates predictor switching
	// (interpolation wins at low bit-rates, Lorenzo at high).
	ds, err := rqm.GenerateDataset("rtm", 42, rqm.ScaleSmall)
	if err != nil {
		log.Fatal(err)
	}
	field := ds.Fields[len(ds.Fields)-1]
	candidates := []rqm.PredictorKind{rqm.Lorenzo, rqm.Interpolation, rqm.InterpolationCubic, rqm.Regression}

	lo, hi := field.ValueRange()
	eb := 1e-3 * (hi - lo)
	choices, err := rqm.SelectPredictor(field, candidates, eb, rqm.ModelOptions{UseLossless: true})
	if err != nil {
		log.Fatal(err)
	}

	pred, err := rqm.CodecByName(rqm.CodecPredictionName)
	if err != nil {
		log.Fatal(err)
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "rank\tpredictor\tmodel bits/value\tmodel PSNR\tmeasured bits/value")
	for i, c := range choices {
		// Validate each candidate with a real run.
		res, err := rqm.CompressWith(pred, field, rqm.CodecOptions{
			Predictor: c.Kind, Mode: rqm.ABS, ErrorBound: eb, Lossless: rqm.LosslessFlate,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%d\t%s\t%.3f\t%.2f\t%.3f\n",
			i+1, c.Kind, c.Estimate.TotalBitRate, c.Estimate.PSNR, res.Stats.BitRate)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmodel's pick: %s (one sampling pass per candidate, no trial compression)\n",
		choices[0].Kind)

	// The rate-distortion view across bounds, straight from the model.
	fmt.Println("\nmodeled rate-distortion (bits/value -> PSNR):")
	for _, c := range choices[:2] {
		fmt.Printf("  %s:", c.Kind)
		for _, pt := range rqm.RateDistortion(c.Profile, 1e-5, 1e-2, 6) {
			fmt.Printf("  %.2f->%.1fdB", pt.BitRate, pt.PSNR)
		}
		fmt.Println()
	}
}
