// Streaming: push a large field through the chunked compression pipeline —
// concurrent per-chunk compression with bounded memory — then let the
// ratio-quality model pick every chunk's error bound adaptively to hit a
// global PSNR target, the paper's headline use case running inline. Finally
// random-access a single chunk out of the container without decoding the
// rest.
package main

import (
	"bytes"
	"fmt"
	"log"

	"rqm"
)

func main() {
	field, err := rqm.GenerateField("nyx/temperature", 42, rqm.ScaleSmall)
	if err != nil {
		log.Fatal(err)
	}
	lo, hi := field.ValueRange()
	fmt.Printf("field %q: %v values, range [%.3g, %.3g]\n", field.Name, field.Dims, lo, hi)

	// --- Fixed-bound streaming -------------------------------------------
	// The writer chunks the value stream, compresses chunks on a worker
	// pool, and frames a self-describing chunked container. Memory stays
	// O(workers x chunk size) however large the stream is.
	var container bytes.Buffer
	w, err := rqm.NewWriter(&container,
		rqm.WithStreamShape(field.Prec, field.Dims...),
		rqm.WithStreamFieldName(field.Name),
		rqm.WithChunkSize(1<<16),
		rqm.WithStreamWorkers(4),
		rqm.WithStreamCompression(rqm.CodecOptions{
			Predictor: rqm.Lorenzo, Mode: rqm.ABS, ErrorBound: 1e-3 * (hi - lo),
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := w.WriteValues(field.Data); err != nil {
		log.Fatal(err)
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	st := w.Stats()
	fmt.Printf("streamed: %d values in %d chunks, %d -> %d bytes (%.2fx) in %v\n",
		st.Values, st.Chunks, st.BytesIn, st.BytesOut, st.Ratio, st.EncodeTime)

	// The reader runs the pipeline in reverse; ReadAll reassembles the
	// original shape from the stream header. rqm.Decompress on the full
	// container is bit-identical.
	r, err := rqm.NewReader(bytes.NewReader(container.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	back, err := r.ReadAll()
	if err != nil {
		log.Fatal(err)
	}
	psnr, err := rqm.PSNR(field, back)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round trip: field %q %v, PSNR %.2f dB\n", back.Name, back.Dims, psnr)

	// --- Adaptive per-chunk bounds ---------------------------------------
	// With an AdaptiveBound policy the writer profiles each chunk with the
	// ratio-quality model (one cheap sampling pass, zero trial
	// compressions) and solves for the bound meeting a global target.
	var adaptive bytes.Buffer
	w, err = rqm.NewWriter(&adaptive,
		rqm.WithStreamShape(field.Prec, field.Dims...),
		rqm.WithChunkSize(1<<16),
		rqm.WithAdaptiveBound(rqm.AdaptiveBound{TargetPSNR: 65}),
		rqm.WithStreamModel(rqm.ModelOptions{SampleRate: 0.05}),
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := w.WriteValues(field.Data); err != nil {
		log.Fatal(err)
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	ast := w.Stats()
	aback, err := rqm.Decompress(adaptive.Bytes())
	if err != nil {
		log.Fatal(err)
	}
	apsnr, err := rqm.PSNR(field, aback)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adaptive @ 65 dB target: bounds [%.4g, %.4g] per chunk, %.2fx, measured %.2f dB\n",
		ast.MinBound, ast.MaxBound, ast.Ratio, apsnr)

	// --- Random access ----------------------------------------------------
	// The trailer index addresses every chunk; decode one without touching
	// the rest of the container.
	idx, err := rqm.ReadStreamIndex(bytes.NewReader(adaptive.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	entry := idx.Entries[len(idx.Entries)/2]
	vals, err := rqm.ReadStreamChunk(bytes.NewReader(adaptive.Bytes()), entry)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("random access: chunk at offset %d -> %d values (bound %.4g), rest untouched\n",
		entry.Offset, len(vals), entry.AbsBound)
}
