// Example progressive: the quality ladder over one dataset — a lossy
// error-bounded base plus a lossless residual layer, served from the same
// archive. An exact put stores both tiers; exact gets and slices return the
// original bit for bit (verified against the stored SHA-256 server-side);
// demote reclaims the residual's space while the lossy tier keeps serving;
// promote rebuilds the layer from the true original, which must reproduce
// the dataset's content hash. Recompacting a promoted dataset re-encodes
// from the true original, so the quality target is actually hit rather
// than bounded from a reconstruction.
package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log"
	"net/http/httptest"
	"os"

	"rqm"
	"rqm/client"
	"rqm/internal/grid"
	"rqm/internal/service"
	"rqm/internal/store"
)

func main() {
	// A real deployment runs `rqserved -addr :8080 -store-dir /var/lib/rqm`;
	// the example hosts the same handler in-process over a temp directory.
	dir, err := os.MkdirTemp("", "rqm-progressive-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	svc, err := service.New(service.Config{Store: st})
	if err != nil {
		log.Fatal(err)
	}
	srv := httptest.NewServer(svc)
	defer srv.Close()
	c, err := client.New(srv.URL)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// Synthesize a smooth field and serialize it as the .rqmf upload body.
	g, err := rqm.GenerateField("nyx/temperature", 42, rqm.ScaleSmall)
	if err != nil {
		log.Fatal(err)
	}
	field, err := rqm.FieldFromData("nyx-temperature", rqm.Float64, g.Data, g.Dims...)
	if err != nil {
		log.Fatal(err)
	}
	var body bytes.Buffer
	if _, err := field.WriteTo(&body); err != nil {
		log.Fatal(err)
	}
	original := append([]byte(nil), body.Bytes()...)

	// 1. Exact put: one request stores both tiers — the lossy base through
	//    the chunked pipeline, and the residual (everything the compression
	//    threw away, XOR-coded against the reconstruction) beside it.
	info, err := c.PutDataset(ctx, "nyx", &body, client.PutDatasetParams{
		Mode: "rel", ErrorBound: 1e-3, ChunkValues: 64 * 1024, Exact: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	exactPct := 100 * float64(info.ContainerBytes+info.ResidualBytes) / float64(info.OriginalBytes)
	fmt.Printf("exact put %q: base %d bytes (ratio %.2fx) + residual %d bytes (%s)\n",
		info.Name, info.ContainerBytes, info.Ratio, info.ResidualBytes, info.ResidualBackend)
	fmt.Printf("  lossy+residual = %.1f%% of the %d-byte original — bit-exactness under raw size\n",
		exactPct, info.OriginalBytes)

	// 2. Exact get: the server reconstructs base ⊕ residual, proves the
	//    result against the stored SHA-256, and streams the original bytes.
	var back bytes.Buffer
	if err := c.GetDatasetExact(ctx, "nyx", &back); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact get: %d bytes, identical to the upload: %v\n",
		back.Len(), bytes.Equal(back.Bytes(), original))

	// 3. Exact slice: only the chunks — and residual blocks — covering the
	//    range are decoded; the values come back bit-identical.
	const off, n = 100_000, 4096
	var sliceBuf bytes.Buffer
	if err := c.SliceDatasetExact(ctx, "nyx", off, n, &sliceBuf); err != nil {
		log.Fatal(err)
	}
	slice, err := grid.ReadFrom(&sliceBuf)
	if err != nil {
		log.Fatal(err)
	}
	exactVals := 0
	for i := 0; i < slice.Len(); i++ {
		if slice.Data[i] == field.Data[off+i] {
			exactVals++
		}
	}
	fmt.Printf("exact slice [%d:%d): %d/%d values bit-identical to the original\n",
		off, off+n, exactVals, slice.Len())

	// 4. Demote: drop the residual to reclaim its space. The lossy tier
	//    keeps serving; the exact tier answers a typed 409.
	dinfo, err := c.DemoteDataset(ctx, "nyx")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("demote: exact=%v, generation %d -> %d\n",
		dinfo.Exact, info.Generation, dinfo.Generation)
	var ae *client.APIError
	if err := c.GetDatasetExact(ctx, "nyx", &bytes.Buffer{}); errors.As(err, &ae) {
		fmt.Printf("exact get after demote: typed %d %s (lossy reads still serve)\n",
			ae.Status, ae.Code)
	}
	if err := c.GetDataset(ctx, "nyx", &bytes.Buffer{}); err != nil {
		log.Fatal(err)
	}

	// 5. Promote: rebuild the layer from the true original. The server
	//    proves the upload reproduces the dataset's content hash first — a
	//    promotion can never install a residual that "restores" to the
	//    wrong data (try corrupting `original` here: typed 409).
	pinfo, err := c.PromoteDataset(ctx, "nyx", bytes.NewReader(original))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("promote: residual restored, %d bytes (%s), generation %d\n",
		pinfo.ResidualBytes, pinfo.ResidualBackend, pinfo.Generation)

	// 6. Recompact the promoted dataset toward a quality target: with the
	//    residual present the rewrite re-encodes from the TRUE original —
	//    the recorded bound is the fresh solve's alone, no accumulation,
	//    and the new residual is rebuilt against the new base.
	rr, err := c.RecompactDataset(ctx, "nyx", client.SolveTarget{Kind: "psnr", Value: 80})
	if err != nil {
		log.Fatal(err)
	}
	if rr.Skipped {
		fmt.Printf("recompact to PSNR 80: skipped (%s)\n", rr.Reason)
	} else {
		fmt.Printf("recompact to PSNR 80 dB from the true original: bound %.3g -> %.3g, est PSNR %.1f dB\n",
			rr.OldBound, rr.NewBound, float64(rr.EstPSNR))
	}
	back.Reset()
	if err := c.GetDatasetExact(ctx, "nyx", &back); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact get after recompaction: still the original bit for bit: %v\n",
		bytes.Equal(back.Bytes(), original))

	// /metrics reports the ladder's activity.
	ms, err := c.Metrics(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("metrics: %d residual bytes held, %d exact reads, %d promotes, %d demotes\n",
		ms.ResidualBytes, ms.ExactReads, ms.Promotes, ms.Demotes)
}
