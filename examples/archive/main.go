// Example archive: the persistent RQ-indexed dataset store end to end — an
// in-process rqserved instance with a -store-dir, the Go client, and the
// archive loop the paper's model enables: put a field once (one sampling
// pass, cached in the manifest), slice-read element ranges that decompress
// only the covering chunks, then recompact toward a ratio target — where
// the cached model first answers "is this already met?" in O(sample) and
// skips the rewrite when it is.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"os"

	"rqm"
	"rqm/client"
	"rqm/internal/grid"
	"rqm/internal/service"
	"rqm/internal/store"
)

func main() {
	// A real deployment runs `rqserved -addr :8080 -store-dir /var/lib/rqm`;
	// the example hosts the same handler in-process over a temp directory.
	dir, err := os.MkdirTemp("", "rqm-archive-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	svc, err := service.New(service.Config{Store: st})
	if err != nil {
		log.Fatal(err)
	}
	srv := httptest.NewServer(svc)
	defer srv.Close()
	c, err := client.New(srv.URL)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// Synthesize a field and serialize it as the .rqmf upload body.
	g, err := rqm.GenerateField("nyx/temperature", 42, rqm.ScaleSmall)
	if err != nil {
		log.Fatal(err)
	}
	field, err := rqm.FieldFromData("nyx-temperature", rqm.Float64, g.Data, g.Dims...)
	if err != nil {
		log.Fatal(err)
	}
	var body bytes.Buffer
	if _, err := field.WriteTo(&body); err != nil {
		log.Fatal(err)
	}

	// 1. Put: one request admits the dataset — profiled once, compressed
	//    through the chunked pipeline, committed crash-safely with the
	//    chunk index and the cached RQ profile in the manifest.
	info, err := c.PutDataset(ctx, "nyx-temperature", &body, client.PutDatasetParams{
		Mode: "rel", ErrorBound: 1e-3, ChunkValues: 64 * 1024,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("put %q: %d values in %d chunks, %d -> %d bytes (ratio %.2fx, est PSNR %.1f dB)\n",
		info.Name, info.TotalValues, info.Chunks, info.OriginalBytes,
		info.ContainerBytes, info.Ratio, float64(info.EstPSNR))

	// 2. Slice read: the server maps [off, off+len) onto the manifest's
	//    chunk index and decompresses only the covering chunks.
	const off, n = 100_000, 4096
	var sliceBuf bytes.Buffer
	if err := c.SliceDataset(ctx, "nyx-temperature", off, n, &sliceBuf); err != nil {
		log.Fatal(err)
	}
	slice, err := grid.ReadFrom(&sliceBuf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("slice [%d:%d): %d values, first=%.4f (decompressed %d of %d chunks server-side)\n",
		off, off+n, slice.Len(), slice.Data[0], st.ChunkReads(), info.Chunks)

	// 3. Recompact toward a ratio the archive already achieves: the cached
	//    model answers from the manifest and the container is NOT rewritten.
	already, err := c.RecompactDataset(ctx, "nyx-temperature",
		client.SolveTarget{Kind: "ratio", Value: info.Ratio * 0.8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recompact to %.2fx: skipped=%v (%s)\n",
		already.TargetValue, already.Skipped, already.Reason)

	// 4. Recompact toward a harder ratio target: the model solves the bound
	//    (ErrorBoundForRatio on the cached profile), the container is
	//    rewritten once through the stream pipeline, and the manifest's
	//    generation advances.
	harder, err := c.RecompactDataset(ctx, "nyx-temperature",
		client.SolveTarget{Kind: "ratio", Value: info.Ratio * 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recompact to %.2fx: bound %.3g -> %.3g, ratio %.2fx -> %.2fx (gen %d, est PSNR %.1f dB)\n",
		harder.TargetValue, harder.OldBound, harder.NewBound,
		harder.OldRatio, harder.NewRatio, harder.Generation, float64(harder.EstPSNR))

	// The archive still serves the field, now at the recompacted bound.
	var out bytes.Buffer
	if err := c.GetDataset(ctx, "nyx-temperature", &out); err != nil {
		log.Fatal(err)
	}
	back, err := grid.ReadFrom(&out)
	if err != nil {
		log.Fatal(err)
	}
	psnr, err := rqm.PSNR(field, back)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("get after recompaction: %d values, measured PSNR %.1f dB\n", back.Len(), psnr)

	// /metrics shows the archive's activity.
	ms, err := c.Metrics(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("metrics: %d datasets, %d bytes stored, %d store writes, %d slice reads, %d recompactions (%d skipped)\n",
		ms.Datasets, ms.StoreBytes, ms.StoreWrites, ms.SliceReads,
		ms.Recompactions, ms.RecompactionsSkipped)
}
