// Memory compression with a target footprint (paper use-case §IV-B): plan
// an error bound so the compressed data fits an assigned memory budget,
// targeting 80% of the budget to absorb model error, with strict
// re-compression on the rare overflow. The planning runs on the codec
// interface, so the same call works for any registered backend.
package main

import (
	"fmt"
	"log"

	"rqm"
)

func main() {
	field, err := rqm.GenerateField("miranda/vx", 42, rqm.ScaleSmall)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := rqm.NewEngine(
		rqm.WithPredictor(rqm.Interpolation),
		rqm.WithLossless(rqm.LosslessFlate),
		rqm.WithModelOptions(rqm.ModelOptions{UseLossless: true}),
	)
	if err != nil {
		log.Fatal(err)
	}

	// One sampling pass serves every budget below.
	profile, err := eng.Profile(field)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("field %q: %s original\n", field.Name, mb(field.OriginalBytes()))
	// Emulate shrinking GPU memory budgets: 1/8, 1/16, 1/32 of original.
	for _, frac := range []int64{8, 16, 32} {
		budget := field.OriginalBytes() / frac
		plan, err := eng.CompressToBudget(field, profile, budget, 0.2, true)
		if err != nil {
			log.Fatal(err)
		}
		used := plan.Result.Stats.CompressedBytes
		fmt.Printf("budget %s: planned eb %.4g -> used %s (%.1f%% of budget, %d round(s))\n",
			mb(budget), plan.ErrorBound, mb(used), 100*float64(used)/float64(budget), plan.Rounds)

		// Show the quality cost of the tighter budgets.
		dec, err := rqm.Decompress(plan.Result.Bytes)
		if err != nil {
			log.Fatal(err)
		}
		psnr, err := rqm.PSNR(field, dec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("           reconstruction quality: %.2f dB PSNR\n", psnr)
	}
}

func mb(n int64) string { return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20)) }
