// Quickstart: configure an Engine, compress a scientific field with an
// error bound, verify the bound, and show that the ratio-quality model
// predicted the outcome without running the compressor.
package main

import (
	"fmt"
	"log"

	"rqm"
)

func main() {
	// Synthesize a Nyx-like 3D temperature field (a stand-in for the
	// cosmology data the paper evaluates).
	field, err := rqm.GenerateField("nyx/temperature", 42, rqm.ScaleSmall)
	if err != nil {
		log.Fatal(err)
	}
	lo, hi := field.ValueRange()
	fmt.Printf("field %q: %v values, range [%.3g, %.3g]\n", field.Name, field.Dims, lo, hi)

	// One Engine carries the full configuration: codec, bound, lossless
	// stage. The prediction codec is the default.
	eb := 1e-3 * (hi - lo)
	eng, err := rqm.NewEngine(
		rqm.WithPredictor(rqm.Lorenzo),
		rqm.WithMode(rqm.ABS),
		rqm.WithErrorBound(eb),
		rqm.WithLossless(rqm.LosslessFlate),
		rqm.WithModelOptions(rqm.ModelOptions{UseLossless: true}),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Build the model profile: ONE cheap sampling pass (1% of the data).
	profile, err := eng.Profile(field)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profile built in %v from %d sampled prediction errors\n",
		profile.BuildTime, len(profile.Errors))

	// Ask the model about the error bound BEFORE compressing anything.
	est := profile.EstimateAt(eb)
	fmt.Printf("\nmodel says (eb=%.4g):\n", eb)
	fmt.Printf("  ratio %.2fx, %.3f bits/value, PSNR %.2f dB, SSIM %.4f\n",
		est.Ratio, est.TotalBitRate, est.PSNR, est.SSIM)

	// Now actually compress and compare. The output is a self-describing
	// envelope container; rqm.Decompress routes it to the right codec.
	res, err := eng.Compress(field)
	if err != nil {
		log.Fatal(err)
	}
	back, err := rqm.Decompress(res.Bytes)
	if err != nil {
		log.Fatal(err)
	}
	if err := rqm.VerifyErrorBound(field, back, rqm.ABS, eb); err != nil {
		log.Fatal(err)
	}
	psnr, err := rqm.PSNR(field, back)
	if err != nil {
		log.Fatal(err)
	}
	ssim, err := rqm.GlobalSSIM(field, back)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmeasured (%s codec):\n", res.Stats.Codec)
	fmt.Printf("  ratio %.2fx, %.3f bits/value, PSNR %.2f dB, SSIM %.4f\n",
		res.Stats.Ratio, res.Stats.BitRate, psnr, ssim)
	fmt.Printf("  error bound verified on all %d values\n", field.Len())
}
