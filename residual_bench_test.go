package rqm_test

import (
	"io"
	"testing"

	"rqm"
	"rqm/internal/residual"
	"rqm/internal/store"
)

// Residual-layer benchmarks, pinned in the CI bench baseline alongside the
// store round trip: the cost of building the lossless layer at put time
// (encode: XOR against the reconstruction, byte-plane transposition,
// per-plane entropy coding) and of serving it at read time (exact read:
// chunk decode + residual block decode + XOR apply).

// BenchmarkResidualEncode measures framing one field's residual against its
// lossy reconstruction — the marginal cost ?exact=1 adds to a dataset put.
func BenchmarkResidualEncode(b *testing.B) {
	_, eng, f, _ := storeBenchSetup(b)
	res, err := eng.Compress(f)
	if err != nil {
		b.Fatal(err)
	}
	recon, err := eng.Decompress(res.Bytes)
	if err != nil {
		b.Fatal(err)
	}
	c, err := residual.ByName(residual.DefaultBackend)
	if err != nil {
		b.Fatal(err)
	}
	// Block to the same 64Ki-value geometry the store benches chunk at.
	var blocks []int
	for rem := f.Len(); rem > 0; {
		n := 64 * 1024
		if rem < n {
			n = rem
		}
		blocks = append(blocks, n)
		rem -= n
	}
	b.SetBytes(f.OriginalBytes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := residual.Encode(io.Discard, c, f.Prec, f.Data, recon.Data, blocks); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExactRead measures a random-access read at the lossless tier: an
// interior range decoded from only the covering chunks, their residual
// blocks applied, bit-exact values out.
func BenchmarkExactRead(b *testing.B) {
	st, eng, f, man := storeBenchSetup(b)
	m, err := st.PutWithResidual("bench", func(w io.Writer) (*store.Manifest, error) {
		sw, err := eng.NewFieldStreamWriter(w, f, rqm.WithChunkSize(64*1024))
		if err != nil {
			return nil, err
		}
		if err := sw.WriteValues(f.Data); err != nil {
			return nil, err
		}
		return man, sw.Close()
	}, store.BuildResidual(f.Data, f.Prec, residual.DefaultBackend))
	if err != nil {
		b.Fatal(err)
	}
	const n = 4096
	b.SetBytes(n * 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vals, err := st.ReadRangeExact(m, int64(f.Len()/2), n)
		if err != nil {
			b.Fatal(err)
		}
		if len(vals) != n {
			b.Fatalf("exact read returned %d values, want %d", len(vals), n)
		}
	}
}
