package rqm_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"rqm"
	"rqm/internal/service"
)

// serviceBenchSetup builds a service and one .rqmf request body.
func serviceBenchSetup(b *testing.B) (*service.Service, []byte) {
	b.Helper()
	svc, err := service.New(service.Config{})
	if err != nil {
		b.Fatal(err)
	}
	g, err := rqm.GenerateField("nyx/temperature", 3, rqm.ScaleSmall)
	if err != nil {
		b.Fatal(err)
	}
	f, err := rqm.FieldFromData("bench", rqm.Float64, g.Data, g.Dims...)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	return svc, buf.Bytes()
}

// postProfile runs one POST /v1/profile through the handler and returns the
// profile ID.
func postProfile(b *testing.B, svc *service.Service, body []byte) string {
	b.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/profile", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	svc.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("profile status %d: %s", rec.Code, rec.Body.String())
	}
	var pr service.ProfileResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &pr); err != nil {
		b.Fatal(err)
	}
	return pr.Profile
}

// BenchmarkServiceProfileCold measures the cache-miss path: every request
// pays the full sampling pass plus curve evaluation. This is the cost the
// profile cache amortizes away.
func BenchmarkServiceProfileCold(b *testing.B) {
	svc, body := serviceBenchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svc.FlushProfiles() // force the cold path
		postProfile(b, svc, body)
	}
}

// BenchmarkServiceEstimateCached measures the serving hot path: after one
// profile, every ratio/PSNR question is answered from the cache in
// O(sample) with no field upload and no sampling pass. The regression gate
// holds this at least an order of magnitude faster than the cold profile.
func BenchmarkServiceEstimateCached(b *testing.B) {
	svc, body := serviceBenchSetup(b)
	id := postProfile(b, svc, body)
	url := "/v1/estimate?profile=" + id + "&eb=1e-3"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodGet, url, nil)
		rec := httptest.NewRecorder()
		svc.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("estimate status %d: %s", rec.Code, rec.Body.String())
		}
	}
}
