// Package client is the Go client for the rqserved HTTP API (internal/
// service): compression and decompression as streamed request/response
// bodies, plus the profile-cache endpoints that answer ratio/quality
// questions from one cheap sampling pass. The CLI's -remote mode is a thin
// wrapper around this package.
//
//	c, _ := client.New("http://localhost:8080")
//	info, _ := c.Profile(ctx, fieldFile, client.ProfileParams{})
//	est, _ := c.Estimate(ctx, info.Profile, 1e-3, "rel") // O(1): no upload
//
// Failed requests return *APIError carrying the service's stable error code
// ("bad_magic", "profile_not_found", "too_many_requests", ...).
package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"syscall"
	"time"

	"rqm/internal/service"
)

// Re-exported response types: the service wire format is the contract.
type (
	// ProfileResponse is the /v1/profile answer (profile ID + RQ curve).
	ProfileResponse = service.ProfileResponse
	// EstimateResponse is the /v1/estimate answer.
	EstimateResponse = service.EstimateResponse
	// SolveResponse is the /v1/solve answer.
	SolveResponse = service.SolveResponse
	// HealthResponse is the /healthz answer.
	HealthResponse = service.HealthResponse
	// MetricsSnapshot is the /metrics answer.
	MetricsSnapshot = service.MetricsSnapshot
	// CurvePoint is one point of a profile's ratio-quality curve.
	CurvePoint = service.CurvePoint
)

// APIError is a non-2xx response decoded from the service's JSON envelope.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the service's stable machine-matchable error code.
	Code string
	// Message is the human-oriented detail.
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("rqserved: %s (%d %s)", e.Message, e.Status, e.Code)
}

// DefaultRetryAttempts and DefaultRetryBase configure the built-in 429
// retry policy for idempotent (GET) requests: up to 3 total attempts with
// jittered exponential backoff starting around DefaultRetryBase.
const (
	DefaultRetryAttempts = 3
	DefaultRetryBase     = 100 * time.Millisecond
)

// Client talks to one rqserved endpoint. Safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client

	retryAttempts int
	retryBase     time.Duration
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts, proxies,
// test transports).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithRetry tunes the retry policy for idempotent (GET) requests: attempts
// is the total try count (1 disables retries), base the first backoff
// delay. Two failure classes are retried: the service's typed admission
// rejection (HTTP 429, code "too_many_requests") and transient transport
// errors (connection refused/reset, unexpected EOF). Never for POST or
// DELETE, whose effects must not be replayed blindly.
func WithRetry(attempts int, base time.Duration) Option {
	return func(c *Client) {
		if attempts < 1 {
			attempts = 1
		}
		if base <= 0 {
			base = DefaultRetryBase
		}
		c.retryAttempts = attempts
		c.retryBase = base
	}
}

// New builds a client for the service at baseURL (e.g. "http://host:8080").
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("client: %q is not an absolute base URL", baseURL)
	}
	c := &Client{
		base:          strings.TrimRight(u.String(), "/"),
		hc:            http.DefaultClient,
		retryAttempts: DefaultRetryAttempts,
		retryBase:     DefaultRetryBase,
	}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// CompressParams scope one compress request; zero values defer to the
// server's engine configuration.
type CompressParams struct {
	// Codec, Predictor, Mode, Lossless override the server's backend
	// configuration by name ("prediction", "lorenzo", "abs", "flate", ...).
	Codec, Predictor, Mode, Lossless string
	// ErrorBound overrides the bound (Mode semantics); 0 = server default.
	ErrorBound float64
	// Stream forces the chunked streaming pipeline regardless of body size.
	Stream bool
	// ChunkValues sets the streaming chunk size in values (0 = default).
	ChunkValues int
	// TargetRatio / TargetPSNR switch to model-driven adaptive per-chunk
	// bounds (streaming implied).
	TargetRatio, TargetPSNR float64
	// SampleRate overrides the model sampling rate behind adaptive bounds
	// (0 = server default).
	SampleRate float64
	// AdaptiveSpace switches chunk planning to variance-guided spatial
	// partitioning with per-region solved bounds (needs TargetRatio or
	// TargetPSNR).
	AdaptiveSpace bool
	// HasValueRange declares the field's global value range [ValueLo,
	// ValueHi] — required when streaming under a REL bound.
	HasValueRange    bool
	ValueLo, ValueHi float64
}

func (p CompressParams) query() url.Values {
	q := url.Values{}
	set := func(k, v string) {
		if v != "" {
			q.Set(k, v)
		}
	}
	set("codec", p.Codec)
	set("predictor", p.Predictor)
	set("mode", p.Mode)
	set("lossless", p.Lossless)
	if p.ErrorBound > 0 {
		q.Set("eb", strconv.FormatFloat(p.ErrorBound, 'g', -1, 64))
	}
	if p.Stream {
		q.Set("stream", "1")
	}
	if p.ChunkValues > 0 {
		q.Set("chunk", strconv.Itoa(p.ChunkValues))
	}
	if p.TargetRatio > 0 {
		q.Set("target-ratio", strconv.FormatFloat(p.TargetRatio, 'g', -1, 64))
	}
	if p.TargetPSNR > 0 {
		q.Set("target-psnr", strconv.FormatFloat(p.TargetPSNR, 'g', -1, 64))
	}
	if p.SampleRate > 0 {
		q.Set("sample", strconv.FormatFloat(p.SampleRate, 'g', -1, 64))
	}
	if p.AdaptiveSpace {
		q.Set("adaptive-space", "1")
	}
	if p.HasValueRange {
		q.Set("value-range", strconv.FormatFloat(p.ValueLo, 'g', -1, 64)+","+
			strconv.FormatFloat(p.ValueHi, 'g', -1, 64))
	}
	return q
}

// CompressInfo reports the statistics headers of a compress response.
type CompressInfo struct {
	// Codec names the backend that served the request ("" when streamed).
	Codec string
	// Ratio and BitRate are the sealed-container statistics ("" -> 0 when
	// streamed: the stats are not known before the response body ends).
	Ratio, BitRate float64
	// Streamed reports whether the chunked pipeline served the request.
	Streamed bool
}

// Compress sends a .rqmf field and streams the compressed container to out.
func (c *Client) Compress(ctx context.Context, field io.Reader, out io.Writer, p CompressParams) (*CompressInfo, error) {
	resp, err := c.post(ctx, "/v1/compress", p.query(), field)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	info := &CompressInfo{
		Codec:    resp.Header.Get("X-RQM-Codec"),
		Streamed: resp.Header.Get("X-RQM-Streamed") == "1",
	}
	info.Ratio, _ = strconv.ParseFloat(resp.Header.Get("X-RQM-Ratio"), 64)
	info.BitRate, _ = strconv.ParseFloat(resp.Header.Get("X-RQM-Bit-Rate"), 64)
	if _, err := io.Copy(out, resp.Body); err != nil {
		return nil, fmt.Errorf("client: reading compressed stream: %w", err)
	}
	return info, nil
}

// Decompress sends a container and streams the .rqmf field to out.
func (c *Client) Decompress(ctx context.Context, container io.Reader, out io.Writer) error {
	resp, err := c.post(ctx, "/v1/decompress", nil, container)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(out, resp.Body); err != nil {
		return fmt.Errorf("client: reading decompressed stream: %w", err)
	}
	return nil
}

// ProfileParams scope one profile request.
type ProfileParams struct {
	// Codec and Predictor select the profiled configuration.
	Codec, Predictor string
	// SampleRate overrides the model sampling rate (0 = server default).
	SampleRate float64
	// Seed fixes the sampling seed (0 = server default).
	Seed uint64
}

// Profile uploads a .rqmf field for one sampling pass (or a cache hit) and
// returns the profile ID plus the modeled ratio-quality curve.
func (c *Client) Profile(ctx context.Context, field io.Reader, p ProfileParams) (*ProfileResponse, error) {
	q := url.Values{}
	if p.Codec != "" {
		q.Set("codec", p.Codec)
	}
	if p.Predictor != "" {
		q.Set("predictor", p.Predictor)
	}
	if p.SampleRate > 0 {
		q.Set("sample", strconv.FormatFloat(p.SampleRate, 'g', -1, 64))
	}
	if p.Seed > 0 {
		q.Set("seed", strconv.FormatUint(p.Seed, 10))
	}
	resp, err := c.post(ctx, "/v1/profile", q, field)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var pr ProfileResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return nil, fmt.Errorf("client: decoding profile response: %w", err)
	}
	return &pr, nil
}

// Estimate answers "what ratio/PSNR would error bound eb give" from the
// cached profile — no field upload, no compression run. mode is "rel"
// (default) or "abs".
func (c *Client) Estimate(ctx context.Context, profileID string, eb float64, mode string) (*EstimateResponse, error) {
	q := url.Values{}
	q.Set("profile", profileID)
	q.Set("eb", strconv.FormatFloat(eb, 'g', -1, 64))
	if mode != "" {
		q.Set("mode", mode)
	}
	resp, err := c.get(ctx, "/v1/estimate", q)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var er EstimateResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		return nil, fmt.Errorf("client: decoding estimate response: %w", err)
	}
	return &er, nil
}

// SolveTarget names one inverse problem for Solve.
type SolveTarget struct {
	// Kind is "ratio", "psnr", or "bitrate".
	Kind string
	// Value is the target in Kind units.
	Value float64
}

// Solve inverts the model on the cached profile: the error bound meeting
// the target, plus the modeled outcome at that bound.
func (c *Client) Solve(ctx context.Context, profileID string, target SolveTarget) (*SolveResponse, error) {
	q := url.Values{}
	q.Set("profile", profileID)
	q.Set("target-"+target.Kind, strconv.FormatFloat(target.Value, 'g', -1, 64))
	resp, err := c.get(ctx, "/v1/solve", q)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var sr SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, fmt.Errorf("client: decoding solve response: %w", err)
	}
	return &sr, nil
}

// Health checks liveness.
func (c *Client) Health(ctx context.Context) (*HealthResponse, error) {
	resp, err := c.get(ctx, "/healthz", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var hr HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		return nil, fmt.Errorf("client: decoding health response: %w", err)
	}
	return &hr, nil
}

// Metrics fetches the service counters.
func (c *Client) Metrics(ctx context.Context) (*MetricsSnapshot, error) {
	resp, err := c.get(ctx, "/metrics", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var ms MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&ms); err != nil {
		return nil, fmt.Errorf("client: decoding metrics response: %w", err)
	}
	return &ms, nil
}

// post issues a POST with body and returns the response, mapping non-2xx
// statuses to *APIError.
func (c *Client) post(ctx context.Context, path string, q url.Values, body io.Reader) (*http.Response, error) {
	return c.do(ctx, http.MethodPost, path, q, body)
}

func (c *Client) get(ctx context.Context, path string, q url.Values) (*http.Response, error) {
	return c.do(ctx, http.MethodGet, path, q, nil)
}

func (c *Client) do(ctx context.Context, method, path string, q url.Values, body io.Reader) (*http.Response, error) {
	// Idempotent requests (GETs carry no body and cause no server-side
	// effect) retry two transient failure classes with jittered exponential
	// backoff: the service's typed admission rejection (a 429 means
	// "momentarily full", not "broken"), and transport-level connection
	// failures (refused/reset — the shard behind a router may be mid-restart
	// while its replicas are fine). Everything else, and every non-GET,
	// surfaces immediately.
	attempts := 1
	if method == http.MethodGet {
		attempts = c.retryAttempts
	}
	var lastErr error
	for try := 0; try < attempts; try++ {
		if try > 0 {
			if err := c.backoff(ctx, try); err != nil {
				return nil, err
			}
		}
		resp, err := c.doOnce(ctx, method, path, q, body)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		var ae *APIError
		switch {
		case errors.As(err, &ae) && ae.Status == http.StatusTooManyRequests:
		case isTransientTransportErr(err) && ctx.Err() == nil:
		default:
			return nil, err
		}
	}
	return nil, lastErr
}

// isTransientTransportErr reports whether err is a connection-level failure
// worth retrying on an idempotent request: the dial was refused, or the
// peer dropped the connection before/while answering. Context cancellation
// and deadline expiry are deliberate, never retried.
func isTransientTransportErr(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE) {
		return true
	}
	// A peer that closes mid-response surfaces as a bare (unexpected) EOF
	// out of net/http rather than a syscall errno.
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
}

// maxRetryBackoff caps one backoff sleep: past it, exponential growth buys
// nothing (and unchecked doubling would eventually overflow time.Duration).
const maxRetryBackoff = 30 * time.Second

// backoff sleeps the jittered exponential delay for retry number try,
// honoring context cancellation.
func (c *Client) backoff(ctx context.Context, try int) error {
	d := c.retryBase
	for i := 1; i < try && d < maxRetryBackoff; i++ {
		d *= 2
	}
	if d > maxRetryBackoff {
		d = maxRetryBackoff
	}
	d = d/2 + time.Duration(rand.Int64N(int64(d))) // 0.5x..1.5x jitter
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func (c *Client) doOnce(ctx context.Context, method, path string, q url.Values, body io.Reader) (*http.Response, error) {
	u := c.base + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, method, u, body)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/octet-stream")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 == 2 {
		return resp, nil
	}
	defer resp.Body.Close()
	apiErr := &APIError{Status: resp.StatusCode, Code: "unknown", Message: resp.Status}
	var envelope service.ErrorBody
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&envelope); err == nil &&
		envelope.Error.Code != "" {
		apiErr.Code = envelope.Error.Code
		apiErr.Message = envelope.Error.Message
	}
	return nil, apiErr
}
