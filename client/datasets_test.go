package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"rqm"
	"rqm/internal/grid"
	"rqm/internal/service"
	"rqm/internal/store"
)

// newDatasetClient stands up a store-backed service and a client for it.
func newDatasetClient(t *testing.T) *Client {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	svc, err := service.New(service.Config{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc)
	t.Cleanup(ts.Close)
	c, err := New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestDatasetClientEndToEnd drives every dataset method: put, stat, list,
// get (field + raw container), slice, recompact, delete.
func TestDatasetClientEndToEnd(t *testing.T) {
	c := newDatasetClient(t)
	ctx := context.Background()
	f, body := fieldBytes(t)

	info, err := c.PutDataset(ctx, "e2e", bytes.NewReader(body), PutDatasetParams{
		Mode: "rel", ErrorBound: 1e-3, ChunkValues: 1024, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "e2e" || info.TotalValues != int64(f.Len()) || !info.Profiled {
		t.Fatalf("put info %+v", info)
	}

	stat, err := c.StatDataset(ctx, "e2e")
	if err != nil {
		t.Fatal(err)
	}
	if stat.ContentHash != info.ContentHash {
		t.Fatalf("stat hash %q, put hash %q", stat.ContentHash, info.ContentHash)
	}
	list, err := c.ListDatasets(ctx)
	if err != nil || len(list) != 1 || list[0].Name != "e2e" {
		t.Fatalf("list %v, %v", list, err)
	}

	var field bytes.Buffer
	if err := c.GetDataset(ctx, "e2e", &field); err != nil {
		t.Fatal(err)
	}
	back, err := grid.ReadFrom(&field)
	if err != nil {
		t.Fatal(err)
	}
	if err := rqm.VerifyErrorBound(f, back, rqm.REL, 1e-3*(1+1e-12)); err != nil {
		t.Fatal(err)
	}

	var container bytes.Buffer
	if err := c.GetDatasetContainer(ctx, "e2e", &container); err != nil {
		t.Fatal(err)
	}
	if int64(container.Len()) != info.ContainerBytes {
		t.Fatalf("container %d bytes, manifest says %d", container.Len(), info.ContainerBytes)
	}

	var slice bytes.Buffer
	if err := c.SliceDataset(ctx, "e2e", 100, 50, &slice); err != nil {
		t.Fatal(err)
	}
	sf, err := grid.ReadFrom(&slice)
	if err != nil {
		t.Fatal(err)
	}
	if sf.Len() != 50 {
		t.Fatalf("slice holds %d values, want 50", sf.Len())
	}
	for i := 0; i < 50; i++ {
		if sf.Data[i] != back.Data[100+i] {
			t.Fatalf("slice[%d] differs from full decompress", i)
		}
	}

	rr, err := c.RecompactDataset(ctx, "e2e", SolveTarget{Kind: "ratio", Value: info.Ratio / 2})
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Skipped {
		t.Fatalf("recompact to met target not skipped: %+v", rr)
	}

	if err := c.DeleteDataset(ctx, "e2e"); err != nil {
		t.Fatal(err)
	}
	var ae *APIError
	if _, err := c.StatDataset(ctx, "e2e"); !errors.As(err, &ae) || ae.Code != "dataset_not_found" {
		t.Fatalf("stat after delete: %v", err)
	}
}

// TestDatasetClientExactLifecycle drives the progressive-quality methods:
// exact put, bit-exact get and slice, demote, promote, and the typed 409 a
// lossy dataset answers exact reads with.
func TestDatasetClientExactLifecycle(t *testing.T) {
	c := newDatasetClient(t)
	ctx := context.Background()
	f, body := fieldBytes(t)

	info, err := c.PutDataset(ctx, "exact", bytes.NewReader(body), PutDatasetParams{
		Mode: "rel", ErrorBound: 1e-3, ChunkValues: 1024, Exact: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Exact || info.ResidualBytes == 0 {
		t.Fatalf("exact put info %+v — no residual recorded", info)
	}

	var got bytes.Buffer
	if err := c.GetDatasetExact(ctx, "exact", &got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), body) {
		t.Fatal("exact get is not the original bytes")
	}

	var slice bytes.Buffer
	if err := c.SliceDatasetExact(ctx, "exact", 200, 77, &slice); err != nil {
		t.Fatal(err)
	}
	sf, err := grid.ReadFrom(&slice)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 77; i++ {
		if sf.Data[i] != f.Data[200+i] {
			t.Fatalf("exact slice[%d] differs from the original", i)
		}
	}

	// Demote drops the layer: exact reads answer the typed 409, the lossy
	// tier keeps serving.
	dinfo, err := c.DemoteDataset(ctx, "exact")
	if err != nil {
		t.Fatal(err)
	}
	if dinfo.Exact || dinfo.Generation != info.Generation+1 {
		t.Fatalf("demote info %+v", dinfo)
	}
	var ae *APIError
	if err := c.GetDatasetExact(ctx, "exact", &bytes.Buffer{}); !errors.As(err, &ae) || ae.Code != "no_residual" {
		t.Fatalf("exact get after demote: %v", err)
	}
	if err := c.GetDataset(ctx, "exact", &bytes.Buffer{}); err != nil {
		t.Fatalf("lossy get after demote: %v", err)
	}

	// Promote with the true original restores the exact tier.
	pinfo, err := c.PromoteDataset(ctx, "exact", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if !pinfo.Exact || pinfo.ResidualBytes == 0 {
		t.Fatalf("promote info %+v", pinfo)
	}
	got.Reset()
	if err := c.GetDatasetExact(ctx, "exact", &got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), body) {
		t.Fatal("exact get after promote is not the original bytes")
	}
}

// TestRetryOn429 pins the idempotent-retry policy: GETs retry the typed
// admission rejection with backoff until an attempt succeeds, POSTs never
// retry, and a capped client gives up with the original *APIError.
func TestRetryOn429(t *testing.T) {
	var gets, posts, rejectFirst atomic.Int64
	rejectFirst.Store(2)
	mux := http.NewServeMux()
	reject := func(w http.ResponseWriter) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		var body service.ErrorBody
		body.Error.Code = "too_many_requests"
		body.Error.Message = "full"
		json.NewEncoder(w).Encode(&body)
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if gets.Add(1) <= rejectFirst.Load() {
			reject(w)
			return
		}
		json.NewEncoder(w).Encode(&service.HealthResponse{Status: "ok"})
	})
	mux.HandleFunc("/v1/compress", func(w http.ResponseWriter, r *http.Request) {
		posts.Add(1)
		reject(w)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	c, err := New(ts.URL, WithRetry(3, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	// Two rejections, then success on the third (and last allowed) attempt.
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatalf("health with retries: %v", err)
	}
	if got := gets.Load(); got != 3 {
		t.Fatalf("server saw %d GET attempts, want 3", got)
	}

	// POST is not idempotent: exactly one attempt, error surfaces.
	var ae *APIError
	_, err = c.Compress(context.Background(), bytes.NewReader(nil), &bytes.Buffer{}, CompressParams{})
	if !errors.As(err, &ae) || ae.Status != http.StatusTooManyRequests {
		t.Fatalf("compress error %v, want 429 APIError", err)
	}
	if posts.Load() != 1 {
		t.Fatalf("server saw %d POST attempts, want 1", posts.Load())
	}

	// A capped client exhausts its attempts and reports the typed error.
	gets.Store(0)
	rejectFirst.Store(100)
	c2, err := New(ts.URL, WithRetry(2, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Health(context.Background()); !errors.As(err, &ae) || ae.Code != "too_many_requests" {
		t.Fatalf("capped retry error %v", err)
	}
	if gets.Load() != 2 {
		t.Fatalf("capped client tried %d times, want 2", gets.Load())
	}

	// Context cancellation interrupts the backoff sleep.
	c3, err := New(ts.URL, WithRetry(10, time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := c3.Health(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("canceled retry error %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("backoff ignored context cancellation")
	}
}
