package client

import (
	"context"
	"encoding/json"
	"fmt"
	"net/url"

	"rqm/internal/service"
	"rqm/internal/store"
)

// Integrity methods: drive a shard's background scrub pass. These talk to a
// single rqserved shard (the router does not proxy /v1/scrub — each shard's
// archive is scrubbed where it lives).

// Re-exported scrub wire types: the service's format is the contract.
type (
	// ScrubStatus is the GET /v1/scrub/status (and POST /v1/scrub) answer.
	ScrubStatus = service.ScrubStatusResponse
	// ScrubReport is the completed pass's result inside ScrubStatus.
	ScrubReport = store.ScrubReport
	// ScrubIssue is one corrupt dataset found by a pass.
	ScrubIssue = store.ScrubIssue
)

// StartScrub kicks off one background integrity pass over the shard's
// archive (202; a pass already running answers *APIError scrub_running).
// With deep, every chunk is fully decoded and the container re-hashed
// against its commit-time SHA-256, not just CRC-swept.
func (c *Client) StartScrub(ctx context.Context, deep bool) (*ScrubStatus, error) {
	q := url.Values{}
	if deep {
		q.Set("deep", "1")
	}
	resp, err := c.post(ctx, "/v1/scrub", q, nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var st ScrubStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("client: decoding scrub status: %w", err)
	}
	return &st, nil
}

// ScrubStatus reports the current (or last) scrub pass's progress and, once
// finished, its full report.
func (c *Client) ScrubStatus(ctx context.Context) (*ScrubStatus, error) {
	resp, err := c.get(ctx, "/v1/scrub/status", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var st ScrubStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("client: decoding scrub status: %w", err)
	}
	return &st, nil
}
