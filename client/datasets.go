package client

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/url"
	"strconv"

	"rqm/internal/service"
)

// Dataset archive methods: the client side of the /v1/datasets endpoints.
// A put uploads a .rqmf field for profiled, chunked storage; slice reads
// pull element ranges that the server decompresses from only the covering
// chunks; recompaction asks the server to re-solve the dataset's cached
// ratio-quality model for a new target — a no-op round trip when the model
// says the target is already met.

// Re-exported dataset response types (the service wire format is the
// contract).
type (
	// DatasetInfo summarizes one stored dataset.
	DatasetInfo = service.DatasetInfo
	// RecompactResponse reports one recompaction decision.
	RecompactResponse = service.RecompactResponse
)

// PutDatasetParams scope one dataset put; zero values defer to the server's
// engine configuration.
type PutDatasetParams struct {
	// Codec, Predictor, Mode, Lossless override the server's backend
	// configuration by name; Mode must be "abs" or "rel" for datasets.
	Codec, Predictor, Mode, Lossless string
	// ErrorBound overrides the bound (Mode semantics); 0 = server default.
	ErrorBound float64
	// ChunkValues sets the container chunk size in values (0 = default).
	ChunkValues int
	// SampleRate and Seed configure the cached profile's sampling pass.
	SampleRate float64
	Seed       uint64
	// Exact also stores a lossless residual layer alongside the lossy
	// container, so the dataset can serve bit-exact reads (GetDatasetExact).
	Exact bool
	// ResidualBackend picks the residual entropy coder by name (empty =
	// server default); only meaningful with Exact.
	ResidualBackend string
}

func (p PutDatasetParams) query() url.Values {
	q := url.Values{}
	set := func(k, v string) {
		if v != "" {
			q.Set(k, v)
		}
	}
	set("codec", p.Codec)
	set("predictor", p.Predictor)
	set("mode", p.Mode)
	set("lossless", p.Lossless)
	if p.ErrorBound > 0 {
		q.Set("eb", strconv.FormatFloat(p.ErrorBound, 'g', -1, 64))
	}
	if p.ChunkValues > 0 {
		q.Set("chunk", strconv.Itoa(p.ChunkValues))
	}
	if p.SampleRate > 0 {
		q.Set("sample", strconv.FormatFloat(p.SampleRate, 'g', -1, 64))
	}
	if p.Seed > 0 {
		q.Set("seed", strconv.FormatUint(p.Seed, 10))
	}
	if p.Exact {
		q.Set("exact", "1")
		set("residual-backend", p.ResidualBackend)
	}
	return q
}

func datasetPath(name string) string { return "/v1/datasets/" + url.PathEscape(name) }

// PutDataset uploads a .rqmf field for persistent storage under name,
// replacing any previous dataset of that name.
func (c *Client) PutDataset(ctx context.Context, name string, field io.Reader, p PutDatasetParams) (*DatasetInfo, error) {
	resp, err := c.post(ctx, datasetPath(name), p.query(), field)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var info DatasetInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, fmt.Errorf("client: decoding dataset response: %w", err)
	}
	return &info, nil
}

// GetDataset streams the stored dataset back as a decompressed .rqmf field.
func (c *Client) GetDataset(ctx context.Context, name string, out io.Writer) error {
	resp, err := c.get(ctx, datasetPath(name), nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(out, resp.Body); err != nil {
		return fmt.Errorf("client: reading dataset stream: %w", err)
	}
	return nil
}

// GetDatasetExact streams the dataset's lossless tier: the original field
// bit for bit, reconstructed server-side from the lossy base plus the
// residual layer and verified against the stored original hash before the
// first byte is sent. Datasets without a residual layer (put without Exact,
// or demoted) answer a typed 409 no_residual.
func (c *Client) GetDatasetExact(ctx context.Context, name string, out io.Writer) error {
	q := url.Values{}
	q.Set("exact", "1")
	resp, err := c.get(ctx, datasetPath(name), q)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(out, resp.Body); err != nil {
		return fmt.Errorf("client: reading exact dataset stream: %w", err)
	}
	return nil
}

// PromoteDataset adds a lossless residual layer to a committed dataset. The
// original field must be supplied — the server proves the bytes reproduce
// the dataset's content hash before building the residual, so a promotion
// can never install a layer that "restores" to the wrong data.
func (c *Client) PromoteDataset(ctx context.Context, name string, original io.Reader) (*DatasetInfo, error) {
	resp, err := c.post(ctx, datasetPath(name)+"/promote", nil, original)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var info DatasetInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, fmt.Errorf("client: decoding promote response: %w", err)
	}
	return &info, nil
}

// DemoteDataset drops a dataset's residual layer, keeping the lossy base.
// Demoting a dataset with no residual is an idempotent no-op.
func (c *Client) DemoteDataset(ctx context.Context, name string) (*DatasetInfo, error) {
	resp, err := c.post(ctx, datasetPath(name)+"/demote", nil, nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var info DatasetInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, fmt.Errorf("client: decoding demote response: %w", err)
	}
	return &info, nil
}

// GetDatasetContainer streams the stored dataset's compressed container
// verbatim — with its trailer index, the bytes are random-accessible via
// rqm.ReadStreamIndex/ReadStreamChunk without another round trip.
func (c *Client) GetDatasetContainer(ctx context.Context, name string, out io.Writer) error {
	q := url.Values{}
	q.Set("raw", "1")
	resp, err := c.get(ctx, datasetPath(name), q)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(out, resp.Body); err != nil {
		return fmt.Errorf("client: reading container stream: %w", err)
	}
	return nil
}

// StatDataset fetches one dataset's manifest summary without any payload.
func (c *Client) StatDataset(ctx context.Context, name string) (*DatasetInfo, error) {
	q := url.Values{}
	q.Set("manifest", "1")
	resp, err := c.get(ctx, datasetPath(name), q)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var info DatasetInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, fmt.Errorf("client: decoding dataset manifest: %w", err)
	}
	return &info, nil
}

// ListDatasets fetches the summaries of every stored dataset.
func (c *Client) ListDatasets(ctx context.Context) ([]DatasetInfo, error) {
	resp, err := c.get(ctx, "/v1/datasets", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var lr service.ListDatasetsResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		return nil, fmt.Errorf("client: decoding dataset list: %w", err)
	}
	return lr.Datasets, nil
}

// DeleteDataset removes a stored dataset.
func (c *Client) DeleteDataset(ctx context.Context, name string) error {
	resp, err := c.do(ctx, "DELETE", datasetPath(name), nil, nil)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// SliceDataset streams elements [off, off+n) of a stored dataset as a 1-D
// .rqmf field. The server decompresses only the chunks covering the range.
func (c *Client) SliceDataset(ctx context.Context, name string, off, n int64, out io.Writer) error {
	return c.slice(ctx, name, off, n, false, out)
}

// SliceDatasetExact is SliceDataset at the lossless tier: the range comes
// back bit-identical to the original field, reconstructed from only the
// chunks (and residual blocks) covering it.
func (c *Client) SliceDatasetExact(ctx context.Context, name string, off, n int64, out io.Writer) error {
	return c.slice(ctx, name, off, n, true, out)
}

func (c *Client) slice(ctx context.Context, name string, off, n int64, exact bool, out io.Writer) error {
	q := url.Values{}
	q.Set("off", strconv.FormatInt(off, 10))
	q.Set("len", strconv.FormatInt(n, 10))
	if exact {
		q.Set("exact", "1")
	}
	resp, err := c.get(ctx, datasetPath(name)+"/slice", q)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(out, resp.Body); err != nil {
		return fmt.Errorf("client: reading slice stream: %w", err)
	}
	return nil
}

// RecompactOption adjusts one recompaction request beyond its solve target.
type RecompactOption func(url.Values)

// WithAdaptiveSpace asks the recompaction rewrite to use variance-guided
// spatial partitioning: the server replans chunk geometry from the data and
// solves the model per region, and records the partitioner in the manifest so
// later recompactions reproduce it.
func WithAdaptiveSpace() RecompactOption {
	return func(q url.Values) { q.Set("adaptive-space", "1") }
}

// RecompactDataset asks the server to recompact a dataset toward a target
// ("ratio" or "psnr" Kind). The server answers from the dataset's cached
// ratio-quality profile and skips the rewrite when the target is already
// met — inspect Skipped/Reason on the response.
func (c *Client) RecompactDataset(ctx context.Context, name string, target SolveTarget, opts ...RecompactOption) (*RecompactResponse, error) {
	q := url.Values{}
	q.Set("target-"+target.Kind, strconv.FormatFloat(target.Value, 'g', -1, 64))
	for _, opt := range opts {
		opt(q)
	}
	resp, err := c.post(ctx, datasetPath(name)+"/recompact", q, nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var rr RecompactResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		return nil, fmt.Errorf("client: decoding recompact response: %w", err)
	}
	return &rr, nil
}
