package client

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	"rqm"
	"rqm/internal/service"
)

// newClientServer stands up an in-process service and a client against it.
func newClientServer(t *testing.T) *Client {
	t.Helper()
	svc, err := service.New(service.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc)
	t.Cleanup(ts.Close)
	c, err := New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// fieldBytes synthesizes one .rqmf payload.
func fieldBytes(t *testing.T) (*rqm.Field, []byte) {
	t.Helper()
	g, err := rqm.GenerateField("nyx/temperature", 5, rqm.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	f, err := rqm.FieldFromData("client-test", rqm.Float64, g.Data, g.Dims...)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return f, buf.Bytes()
}

// TestClientEndToEnd drives every client method against a live service:
// health, compress/decompress round trip, profile -> estimate -> solve.
func TestClientEndToEnd(t *testing.T) {
	c := newClientServer(t)
	ctx := context.Background()
	f, body := fieldBytes(t)

	if h, err := c.Health(ctx); err != nil || h.Status != "ok" {
		t.Fatalf("health: %+v, %v", h, err)
	}

	var container bytes.Buffer
	info, err := c.Compress(ctx, bytes.NewReader(body), &container, CompressParams{
		Mode: "abs", ErrorBound: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.Codec == "" || !(info.Ratio > 0) {
		t.Fatalf("compress info %+v", info)
	}
	var fieldOut bytes.Buffer
	if err := c.Decompress(ctx, bytes.NewReader(container.Bytes()), &fieldOut); err != nil {
		t.Fatal(err)
	}
	got, err := rqm.Decompress(container.Bytes())
	if err != nil {
		t.Fatalf("served container does not decode locally: %v", err)
	}
	if got.Len() != f.Len() {
		t.Fatalf("container decodes to %d values, want %d", got.Len(), f.Len())
	}

	pr, err := c.Profile(ctx, bytes.NewReader(body), ProfileParams{})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Profile == "" || pr.Cached || len(pr.Curve) == 0 {
		t.Fatalf("profile %+v", pr)
	}
	est, err := c.Estimate(ctx, pr.Profile, 1e-3, "rel")
	if err != nil {
		t.Fatal(err)
	}
	if !(est.Ratio > 1) {
		t.Fatalf("estimate %+v", est)
	}
	sol, err := c.Solve(ctx, pr.Profile, SolveTarget{Kind: "psnr", Value: 60})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Target != "psnr" || !(sol.AbsEB > 0) {
		t.Fatalf("solve %+v", sol)
	}
	m, err := c.Metrics(ctx)
	if err != nil || m.ProfileBuilds != 1 {
		t.Fatalf("metrics %+v, %v (want exactly 1 sampling pass)", m, err)
	}
}

// TestClientAPIError checks non-2xx responses surface as *APIError with the
// service's stable code.
func TestClientAPIError(t *testing.T) {
	c := newClientServer(t)
	ctx := context.Background()

	var out bytes.Buffer
	_, err := c.Compress(ctx, strings.NewReader("not a field"), &out, CompressParams{})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != "bad_field" || apiErr.Status != 422 {
		t.Fatalf("garbage compress: %v, want *APIError{422 bad_field}", err)
	}
	if _, err := c.Estimate(ctx, "feedfacedeadbeef", 1e-3, ""); err == nil {
		t.Fatal("estimate on an unknown profile succeeded")
	} else if !errors.As(err, &apiErr) || apiErr.Code != "profile_not_found" {
		t.Fatalf("unknown profile: %v, want profile_not_found", err)
	}
}

// TestClientBadBaseURL pins constructor validation.
func TestClientBadBaseURL(t *testing.T) {
	for _, bad := range []string{"", "not a url", "/relative/only"} {
		if _, err := New(bad); err == nil {
			t.Fatalf("New(%q) accepted", bad)
		}
	}
}

// TestClientOptionsAndObservability covers the HTTP-client override and the
// health/metrics accessors under a custom transport.
func TestClientOptionsAndObservability(t *testing.T) {
	svc, err := service.New(service.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc)
	t.Cleanup(ts.Close)
	c, err := New(ts.URL+"/", WithHTTPClient(ts.Client()))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	h, err := c.Health(ctx)
	if err != nil || h.Status != "ok" {
		t.Fatalf("health %+v, %v", h, err)
	}
	m, err := c.Metrics(ctx)
	if err != nil || m.Requests < 1 {
		t.Fatalf("metrics %+v, %v", m, err)
	}
	// APIError formats with status and code.
	e := &APIError{Status: 429, Code: "too_many_requests", Message: "slow down"}
	if got := e.Error(); !strings.Contains(got, "429") || !strings.Contains(got, "too_many_requests") {
		t.Fatalf("APIError.Error() = %q", got)
	}
}
