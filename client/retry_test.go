package client

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"
)

// flakyTransport fails the first failures round-trips with err, then
// serves a canned 200. It counts every attempt, so tests pin exactly how
// many tries the retry policy spends.
type flakyTransport struct {
	failures int
	err      error
	calls    int
}

func (f *flakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	f.calls++
	if f.calls <= f.failures {
		return nil, f.err
	}
	return &http.Response{
		StatusCode: http.StatusOK,
		Status:     "200 OK",
		Header:     http.Header{"Content-Type": []string{"application/json"}},
		Body:       io.NopCloser(strings.NewReader(`{"status":"ok"}`)),
		Request:    req,
	}, nil
}

func flakyClient(t *testing.T, ft *flakyTransport) *Client {
	t.Helper()
	c, err := New("http://shard.invalid",
		WithHTTPClient(&http.Client{Transport: ft}),
		WithRetry(3, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestRetryTransientTransportGET: connection-level failures on idempotent
// GETs retry (capped) and succeed once the endpoint answers — this is what
// makes a router failing over behind the scenes invisible to callers.
func TestRetryTransientTransportGET(t *testing.T) {
	for _, tc := range []struct {
		name string
		err  error
	}{
		{"refused", syscall.ECONNREFUSED},
		{"reset", syscall.ECONNRESET},
		{"unexpected-eof", io.ErrUnexpectedEOF},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ft := &flakyTransport{failures: 2, err: tc.err}
			c := flakyClient(t, ft)
			h, err := c.Health(context.Background())
			if err != nil {
				t.Fatalf("GET after %d transient failures: %v", ft.failures, err)
			}
			if h.Status != "ok" || ft.calls != 3 {
				t.Fatalf("status %q after %d calls, want ok after 3", h.Status, ft.calls)
			}
		})
	}
}

// TestRetryExhaustsAttempts: the cap holds — attempts=3 means three tries,
// then the transport error surfaces.
func TestRetryExhaustsAttempts(t *testing.T) {
	ft := &flakyTransport{failures: 10, err: syscall.ECONNREFUSED}
	c := flakyClient(t, ft)
	if _, err := c.Health(context.Background()); err == nil {
		t.Fatal("want error after exhausting retries")
	}
	if ft.calls != 3 {
		t.Fatalf("made %d attempts, want exactly 3", ft.calls)
	}
}

// TestRetryNeverReplaysPOST: non-idempotent methods fail fast on the first
// transport error — a write must never be blindly replayed.
func TestRetryNeverReplaysPOST(t *testing.T) {
	ft := &flakyTransport{failures: 10, err: syscall.ECONNREFUSED}
	c := flakyClient(t, ft)
	err := c.Decompress(context.Background(), bytes.NewReader([]byte("x")), io.Discard)
	if err == nil {
		t.Fatal("want transport error")
	}
	if ft.calls != 1 {
		t.Fatalf("POST made %d attempts, want exactly 1", ft.calls)
	}
}

// TestRetryHonorsCancellation: a canceled context is a decision, not a
// transient — no further attempts.
func TestRetryHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ft := &flakyTransport{failures: 10, err: syscall.ECONNREFUSED}
	c := flakyClient(t, ft)
	cancel()
	if _, err := c.Health(ctx); err == nil {
		t.Fatal("want error under canceled context")
	}
	if ft.calls > 1 {
		t.Fatalf("canceled context still drove %d attempts", ft.calls)
	}
}

// TestIsTransientTransportErr pins the classifier itself.
func TestIsTransientTransportErr(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want bool
	}{
		{syscall.ECONNREFUSED, true},
		{syscall.ECONNRESET, true},
		{syscall.EPIPE, true},
		{io.EOF, true},
		{io.ErrUnexpectedEOF, true},
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
		{nil, false},
		{syscall.EACCES, false},
	} {
		if got := isTransientTransportErr(tc.err); got != tc.want {
			t.Errorf("isTransientTransportErr(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}
