package client

import (
	"context"
	"encoding/json"
	"fmt"

	"rqm/internal/router"
)

// Cluster-tier methods: these only work against an rqrouter endpoint (a
// plain rqserved shard answers 404 "not_found" for /v1/cluster/*, which
// surfaces as *APIError). Everything else on Client — dataset put/get/list/
// delete/slice/recompact — works identically against a shard or a router,
// because the router proxies the dataset API verbatim.

// Re-exported cluster wire types: the router's format is the contract.
type (
	// ClusterStatus is the GET /v1/cluster/status answer.
	ClusterStatus = router.ClusterStatus
	// ShardStatus is one shard's health record within ClusterStatus.
	ShardStatus = router.ShardStatus
	// RebalanceReport is the POST /v1/cluster/rebalance answer.
	RebalanceReport = router.RebalanceReport
	// RouterMetrics is the router's /metrics answer.
	RouterMetrics = router.Metrics
)

// RouterStatus fetches cluster topology and per-shard health from a router.
func (c *Client) RouterStatus(ctx context.Context) (*ClusterStatus, error) {
	resp, err := c.get(ctx, "/v1/cluster/status", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var cs ClusterStatus
	if err := json.NewDecoder(resp.Body).Decode(&cs); err != nil {
		return nil, fmt.Errorf("client: decoding cluster status: %w", err)
	}
	return &cs, nil
}

// Rebalance asks a router to run one placement repair pass and reports
// what moved. Idempotent at the byte level (a clean second pass only
// skips), but a POST all the same: it is never auto-retried.
func (c *Client) Rebalance(ctx context.Context) (*RebalanceReport, error) {
	resp, err := c.post(ctx, "/v1/cluster/rebalance", nil, nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var rr RebalanceReport
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		return nil, fmt.Errorf("client: decoding rebalance report: %w", err)
	}
	return &rr, nil
}

// RouterMetricsSnapshot fetches the router's proxy/failover counters.
func (c *Client) RouterMetricsSnapshot(ctx context.Context) (*RouterMetrics, error) {
	resp, err := c.get(ctx, "/metrics", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var m RouterMetrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, fmt.Errorf("client: decoding router metrics: %w", err)
	}
	return &m, nil
}
