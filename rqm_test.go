package rqm_test

import (
	"math"
	"testing"

	"rqm"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	f, err := rqm.GenerateField("cesm/TS", 42, rqm.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := rqm.NewProfile(f, rqm.Lorenzo, rqm.ModelOptions{SampleRate: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	eb := prof.Range * 1e-3
	est := prof.EstimateAt(eb)
	if est.Ratio <= 1 || est.PSNR <= 0 {
		t.Fatalf("estimate: ratio=%v psnr=%v", est.Ratio, est.PSNR)
	}
	res, err := rqm.Compress(f, rqm.CompressOptions{
		Predictor: rqm.Lorenzo, Mode: rqm.ABS, ErrorBound: eb, Lossless: rqm.LosslessFlate,
	})
	if err != nil {
		t.Fatal(err)
	}
	back, err := rqm.Decompress(res.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	if err := rqm.VerifyErrorBound(f, back, rqm.ABS, eb); err != nil {
		t.Fatal(err)
	}
	psnr, err := rqm.PSNR(f, back)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(psnr-est.PSNR) > 6 {
		t.Errorf("model PSNR %.2f vs measured %.2f", est.PSNR, psnr)
	}
	ssim, err := rqm.GlobalSSIM(f, back)
	if err != nil || ssim <= 0 || ssim > 1 {
		t.Fatalf("ssim = %v, %v", ssim, err)
	}
}

func TestPublicUseCases(t *testing.T) {
	f, err := rqm.GenerateField("hurricane/U", 42, rqm.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	opts := rqm.ModelOptions{SampleRate: 0.2}
	lo, hi := f.ValueRange()

	choices, err := rqm.SelectPredictor(f,
		[]rqm.PredictorKind{rqm.Lorenzo, rqm.Interpolation}, (hi-lo)*1e-3, opts)
	if err != nil || len(choices) != 2 {
		t.Fatalf("SelectPredictor: %v, %d choices", err, len(choices))
	}

	prof, err := rqm.NewProfile(f, rqm.Lorenzo, opts)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := rqm.CompressToBudget(f, prof, rqm.Lorenzo, f.OriginalBytes()/8, 0.2, true, rqm.CompressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Result.Stats.CompressedBytes > plan.BudgetBytes {
		t.Fatal("budget plan overflowed")
	}

	ds, err := rqm.GenerateDataset("rtm", 42, rqm.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	var profiles []*rqm.Profile
	for _, snap := range ds.Fields {
		p, err := rqm.NewProfile(snap, rqm.Interpolation, opts)
		if err != nil {
			t.Fatal(err)
		}
		profiles = append(profiles, p)
	}
	allocs, err := rqm.OptimizePartitionsForPSNR(profiles, 60)
	if err != nil || len(allocs) != len(profiles) {
		t.Fatalf("OptimizePartitions: %v, %d allocs", err, len(allocs))
	}

	pts := rqm.RateDistortion(prof, 1e-5, 1e-2, 8)
	if len(pts) != 8 {
		t.Fatalf("RateDistortion points = %d", len(pts))
	}
}

func TestPublicDatasetCatalog(t *testing.T) {
	names := rqm.DatasetNames()
	if len(names) != 10 {
		t.Fatalf("datasets = %d", len(names))
	}
	cfg := rqm.DefaultCluster()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Ranks != 128 {
		t.Fatalf("default ranks = %d", cfg.Ranks)
	}
}

func TestPublicFieldConstruction(t *testing.T) {
	f, err := rqm.NewField("x", rqm.Float32, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 16 {
		t.Fatalf("len = %d", f.Len())
	}
	g, err := rqm.FieldFromData("y", rqm.Float64, []float64{1, 2, 3, 4}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.At(1, 1) != 4 {
		t.Fatalf("At = %v", g.At(1, 1))
	}
	if _, err := rqm.MSE(f, g); err == nil {
		t.Fatal("size mismatch accepted")
	}
}
